package scenario

import (
	"fmt"
	"math"

	"repro/internal/runner"
)

// This file is the aggregation contract shared by the in-process sweep
// executor (exec.go) and the distributed coordinator (internal/distrib):
// per-trial metric vectors are produced in seed order, folded strictly in
// seed order, and finalized into MetricValues by the same code on both
// paths — which is what makes a distributed sweep byte-identical to the
// single-process run at the same seed. Rate metrics would merge exactly
// under any association (integer sums), but mean metrics are float sums,
// so partial aggregates are exchanged as per-trial vectors and the merge
// replays the exact left fold instead of adding chunk subtotals.

// ResolveMetrics resolves a spec's metric names (defaulted when empty)
// against the Metrics registry. The defs align with the returned names.
func ResolveMetrics(spec Spec) ([]string, []MetricDef, error) {
	names := spec.Metrics
	if len(names) == 0 {
		names = DefaultMetrics()
	}
	defs := make([]MetricDef, len(names))
	for i, name := range names {
		def, ok := Metrics.Lookup(name)
		if !ok {
			return nil, nil, fmt.Errorf("scenario: unknown metric %q (have %s)", name, Metrics.Help())
		}
		defs[i] = def
	}
	return names, defs, nil
}

// MetricExtractors binds each metric def against the bound scenario,
// yielding the per-run extractor closures the trial path evaluates.
func (b *Bound) MetricExtractors(defs []MetricDef) ([]func(*Result) float64, error) {
	extract := make([]func(*Result) float64, len(defs))
	for i, def := range defs {
		f, err := def.Bind(b)
		if err != nil {
			return nil, err
		}
		extract[i] = f
	}
	return extract, nil
}

// trialValues wraps a run function into the per-trial metric-vector
// function both executors fan out: one []float64 per trial, aligned with
// the extractors.
func trialValues(run func(seed uint64) *Result, extract []func(*Result) float64) func(seed uint64) []float64 {
	return func(seed uint64) []float64 {
		r := run(seed)
		vals := make([]float64, len(extract))
		for i, f := range extract {
			vals[i] = f(r)
		}
		return vals
	}
}

// RunTrialValues executes trials lo..hi-1 of the bound scenario (seeds
// Seed+lo .. Seed+hi-1) on the process-wide pool and returns their metric
// vectors in seed order. This is the unit of work a distributed lease
// covers; the vectors are exactly what the in-process executor folds.
func (b *Bound) RunTrialValues(extract []func(*Result) float64, lo, hi, workers int) [][]float64 {
	return runner.Trials(hi-lo, b.spec.Seed+uint64(lo), workers, trialValues(b.mustRun, extract))
}

// fold accumulates one trial's metric vector; exec.go documents why the
// sequential seed-order discipline matters.
func (a metricAcc) fold(vals []float64) metricAcc {
	if a.sum == nil {
		a.sum = make([]float64, len(vals))
		a.cnt = make([]int, len(vals))
	}
	for i, v := range vals {
		if math.IsNaN(v) {
			continue
		}
		a.sum[i] += v
		a.cnt[i]++
	}
	return a
}

// finalize turns the accumulated sums into the point's MetricValues.
func (a metricAcc) finalize(names []string, defs []MetricDef, trials int) []MetricValue {
	out := make([]MetricValue, len(defs))
	for i, def := range defs {
		mv := MetricValue{Name: names[i], Kind: def.Kind}
		if a.sum != nil {
			switch def.Kind {
			case KindRate:
				mv.Count = int(a.sum[i])
				mv.Value = a.sum[i] / float64(trials)
			case KindMean:
				mv.Count = a.cnt[i]
				if a.cnt[i] > 0 {
					mv.Value = a.sum[i] / float64(a.cnt[i])
				} else {
					mv.Value = math.NaN()
				}
			}
		} else {
			mv.Value = math.NaN()
		}
		out[i] = mv
	}
	return out
}

// FoldMetrics folds per-trial metric vectors (in seed order, concatenated
// across chunks in chunk order) into the point's MetricValues, replaying
// the in-process executor's fold bit for bit.
func FoldMetrics(names []string, defs []MetricDef, trials int, vals [][]float64) []MetricValue {
	var acc metricAcc
	for _, v := range vals {
		acc = acc.fold(v)
	}
	return acc.finalize(names, defs, trials)
}

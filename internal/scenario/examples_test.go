package scenario

import (
	"os"
	"path/filepath"
	"strings"
	"testing"
)

// TestExampleScenarios: every shipped examples/scenarios/*.json must
// parse, expand and bind at every sweep point, and name only registered
// metrics — so the examples cannot rot as the registries evolve. (CI
// additionally *runs* each one with -trials 1 through amrun.)
func TestExampleScenarios(t *testing.T) {
	dir := filepath.Join("..", "..", "examples", "scenarios")
	entries, err := os.ReadDir(dir)
	if err != nil {
		t.Fatalf("examples/scenarios: %v", err)
	}
	var n int
	for _, e := range entries {
		if e.IsDir() || !strings.HasSuffix(e.Name(), ".json") {
			continue
		}
		n++
		t.Run(e.Name(), func(t *testing.T) {
			data, err := os.ReadFile(filepath.Join(dir, e.Name()))
			if err != nil {
				t.Fatal(err)
			}
			spec, err := ParseSpec(data)
			if err != nil {
				t.Fatalf("parse: %v", err)
			}
			if spec.Name == "" || spec.Doc == "" {
				t.Error("example specs must carry name and doc")
			}
			// Promoted counterexamples (amsearch -promote) are minimized
			// single-seed, single-point specs by construction; everything
			// else ships to demonstrate a sweep.
			if searched := strings.HasPrefix(e.Name(), "searched-"); searched != (len(spec.Sweep) == 0) {
				if searched {
					t.Error("searched counterexamples must be minimized (no sweep)")
				} else {
					t.Error("example specs should demonstrate a sweep")
				}
			}
			for _, m := range spec.Metrics {
				if _, ok := Metrics.Lookup(m); !ok {
					t.Errorf("unknown metric %q", m)
				}
			}
			points, err := spec.Expand()
			if err != nil {
				t.Fatalf("expand: %v", err)
			}
			for i, pt := range points {
				if _, err := Bind(pt.Spec); err != nil {
					t.Errorf("point %d does not bind: %v", i, err)
				}
			}
		})
	}
	if n == 0 {
		t.Fatal("no example scenarios found")
	}
}

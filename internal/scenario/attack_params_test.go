package scenario

import (
	"strings"
	"testing"
)

func chainSpec() Spec {
	return Spec{Protocol: Chain, N: 6, T: 2, Lambda: 0.5, K: 11, Attack: AttackFork}
}

func TestBindRejectsUnknownAttackParam(t *testing.T) {
	s := chainSpec()
	s.AttackParams = map[string]Value{"no_such": {Num: 1}}
	_, err := Bind(s)
	if err == nil || !strings.Contains(err.Error(), "fork_count") {
		t.Fatalf("unknown attack param not rejected with the valid set enumerated: %v", err)
	}
}

func TestBindRejectsOutOfRangeAttackParam(t *testing.T) {
	s := chainSpec()
	s.AttackParams = map[string]Value{"fork_period": {Num: 0}}
	_, err := Bind(s)
	if err == nil || !strings.Contains(err.Error(), "range") {
		t.Fatalf("out-of-range attack param not rejected: %v", err)
	}
}

func TestBindRejectsParamsOnUnparameterizedAttack(t *testing.T) {
	s := chainSpec()
	s.Attack = AttackSilent
	s.AttackParams = map[string]Value{"fork_count": {Num: 1}}
	_, err := Bind(s)
	if err == nil || !strings.Contains(err.Error(), "takes no parameters") {
		t.Fatalf("attack_params on silent not rejected: %v", err)
	}
}

func TestBindAcceptsValidAttackParams(t *testing.T) {
	s := chainSpec()
	s.AttackParams = map[string]Value{
		"fork_period": {Num: 3},
		"target":      {Str: "first", IsStr: true},
		"withhold":    {Num: 0.5},
	}
	if _, err := Bind(s); err != nil {
		t.Fatalf("valid attack_params rejected: %v", err)
	}
}

func TestMarginAndStartWithinPrecedence(t *testing.T) {
	def, ok := Attacks.Lookup(string(AttackLastMinute))
	if !ok {
		t.Fatal("last-minute not registered")
	}
	s := Spec{Attack: AttackLastMinute}
	p, err := def.ResolveParams(&s)
	if err != nil || p.StartWithin != 6 {
		t.Fatalf("default margin: want StartWithin 6, got %d (%v)", p.StartWithin, err)
	}
	s.Margin = 9
	if p, err = def.ResolveParams(&s); err != nil || p.StartWithin != 9 {
		t.Fatalf("spec margin: want StartWithin 9, got %d (%v)", p.StartWithin, err)
	}
	s.AttackParams = map[string]Value{"start_within": {Num: 12}}
	if p, err = def.ResolveParams(&s); err != nil || p.StartWithin != 12 {
		t.Fatalf("attack_params: want StartWithin 12, got %d (%v)", p.StartWithin, err)
	}
}

func TestAttackParamSweepAxis(t *testing.T) {
	ax, err := ParseAxis("attack:fork_period=1,2,4")
	if err != nil {
		t.Fatal(err)
	}
	s := chainSpec()
	s.Sweep = []Axis{ax}
	points, err := s.Expand()
	if err != nil {
		t.Fatal(err)
	}
	if len(points) != 3 {
		t.Fatalf("want 3 points, got %d", len(points))
	}
	for i, want := range []float64{1, 2, 4} {
		got := points[i].Spec.AttackParams["fork_period"]
		if got.IsStr || got.Num != want {
			t.Fatalf("point %d: fork_period = %+v, want %v", i, got, want)
		}
		if _, err := Bind(points[i].Spec); err != nil {
			t.Fatalf("point %d does not bind: %v", i, err)
		}
	}
	// Copy-on-write: the points must not alias one params map.
	points[0].Spec.AttackParams["fork_period"] = Value{Num: 99}
	if points[1].Spec.AttackParams["fork_period"].Num == 99 {
		t.Fatal("sweep points alias one attack_params map")
	}
}

func TestAttackParamAxisValidatedAtBind(t *testing.T) {
	ax, err := ParseAxis("attack:bogus=1")
	if err != nil {
		t.Fatalf("attack:<param> axes parse lazily, got %v", err)
	}
	s := chainSpec()
	s.Sweep = []Axis{ax}
	points, err := s.Expand()
	if err != nil {
		t.Fatal(err)
	}
	if _, err := Bind(points[0].Spec); err == nil {
		t.Fatal("unknown attack:<param> axis not rejected at Bind")
	}
}

package scenario

import (
	"strings"
	"testing"
)

// Two JSON documents that differ only in key order must canonicalize —
// and therefore hash — identically.
func TestSpecHashKeyOrderInsensitive(t *testing.T) {
	a, err := ParseSpec([]byte(`{
		"protocol": "dag", "n": 10, "t": 4, "lambda": 1, "k": 41,
		"attack": "private-chain", "trials": 20,
		"metrics": ["ok", "validity"],
		"topology_params": {"m": 3, "k": 2}
	}`))
	if err != nil {
		t.Fatal(err)
	}
	b, err := ParseSpec([]byte(`{
		"metrics": ["ok", "validity"],
		"topology_params": {"k": 2, "m": 3},
		"trials": 20, "attack": "private-chain",
		"k": 41, "lambda": 1, "t": 4, "n": 10, "protocol": "dag"
	}`))
	if err != nil {
		t.Fatal(err)
	}
	if SpecHash(a) != SpecHash(b) {
		t.Fatalf("key order changed the spec hash:\n a=%s\n b=%s", CanonicalSpec(a), CanonicalSpec(b))
	}
}

// Any parameter change must change the hash.
func TestSpecHashSensitivity(t *testing.T) {
	base := Spec{Protocol: Dag, N: 10, T: 4, Lambda: 1, K: 41, Trials: 20, Seed: 1}
	seen := map[string]string{SpecHash(base): "base"}
	for name, mut := range map[string]func(*Spec){
		"n":       func(s *Spec) { s.N = 12 },
		"seed":    func(s *Spec) { s.Seed = 2 },
		"lambda":  func(s *Spec) { s.Lambda = 0.5 },
		"attack":  func(s *Spec) { s.Attack = AttackSilent },
		"metrics": func(s *Spec) { s.Metrics = []string{"ok"} },
		"trials":  func(s *Spec) { s.Trials = 21 },
	} {
		s := base
		mut(&s)
		h := SpecHash(s)
		if prev, dup := seen[h]; dup {
			t.Fatalf("mutating %q collides with %q", name, prev)
		}
		seen[h] = name
	}
}

// The canonical form round-trips: parse(canonical(s)) canonicalizes to
// the same bytes, so hashing is stable across serialize/parse cycles.
func TestSpecHashRoundTrip(t *testing.T) {
	s := Spec{
		Name: "rt", Protocol: Chain, N: 8, T: 2, Lambda: 0.5, K: 21,
		TieBreak: TieRandom, Attack: AttackFlip, Trials: 5, Seed: 9,
		Metrics: []string{"ok", "duration"},
		Sweep:   []Axis{{Name: "lambda", Values: []Value{{Num: 0.25}, {Num: 1}}}},
	}
	parsed, err := ParseSpec(CanonicalSpec(s))
	if err != nil {
		t.Fatalf("canonical form does not parse: %v", err)
	}
	if SpecHash(parsed) != SpecHash(s) {
		t.Fatalf("canonical round-trip changed the hash")
	}
}

// Unknown fields must be rejected at parse time, not silently dropped
// into a colliding hash.
func TestSpecParseRejectsUnknownField(t *testing.T) {
	_, err := ParseSpec([]byte(`{"protocol": "dag", "n": 10, "lamda": 1}`))
	if err == nil || !strings.Contains(err.Error(), "lamda") {
		t.Fatalf("misspelled field not rejected: %v", err)
	}
}

// A sweep axis declared twice must be rejected with the axis named —
// last-write-wins would silently drop the outer occurrence's values.
func TestExpandRejectsDuplicateAxis(t *testing.T) {
	s := Spec{Protocol: Dag, N: 10, Lambda: 1, K: 41, Sweep: []Axis{
		{Name: "lambda", Values: []Value{{Num: 0.25}, {Num: 0.5}}},
		{Name: "confirm", Values: []Value{{Num: 0}, {Num: 10}}},
		{Name: "lambda", Values: []Value{{Num: 1}}},
	}}
	_, err := s.Expand()
	if err == nil || !strings.Contains(err.Error(), `"lambda"`) {
		t.Fatalf("duplicate axis not rejected by name: %v", err)
	}
	if _, err := RunSpec(s, Options{}); err == nil {
		t.Fatalf("RunSpec accepted a duplicate sweep axis")
	}
}

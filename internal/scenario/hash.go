package scenario

import (
	"crypto/sha256"
	"encoding/hex"
	"encoding/json"
)

// specHashVersion is folded into every spec hash, so any change to the
// canonical form (new Spec fields marshal in declared order, but a field
// rename or semantic change would silently collide) invalidates old
// content-addressed cache entries instead of serving stale results.
const specHashVersion = "amspec/v1\n"

// CanonicalSpec renders a spec in its canonical byte form: the JSON
// marshaling of the parsed struct. Field order is the struct declaration
// order regardless of how an input file ordered its keys, and ParseSpec
// rejects unknown fields, so two JSON documents canonicalize equal iff
// they describe the same spec. The canonical form round-trips: parsing it
// and re-canonicalizing yields the same bytes.
func CanonicalSpec(s Spec) []byte {
	b, err := json.Marshal(s)
	if err != nil {
		panic(err) // Spec is a plain data struct; marshal cannot fail
	}
	return b
}

// SpecHash is the content address of a spec: a versioned SHA-256 over its
// canonical form, rendered as lowercase hex. Key-order variations of the
// same JSON document hash identically; any parameter change does not.
func SpecHash(s Spec) string {
	h := sha256.New()
	h.Write([]byte(specHashVersion))
	h.Write(CanonicalSpec(s))
	return hex.EncodeToString(h.Sum(nil))
}

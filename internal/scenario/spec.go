package scenario

import (
	"encoding/json"
	"fmt"
	"strconv"
	"strings"
)

// Spec declares one scenario: a protocol, an adversary, the model
// parameters, an optional sweep over any of them, and the trials/metrics
// block that turns runs into numbers. The zero value of every optional
// field means "the default", so specs stay terse, and the whole struct
// round-trips through JSON — examples/scenarios/*.json files are Specs.
type Spec struct {
	// Name labels the scenario in tables and JSON output.
	Name string `json:"name,omitempty"`
	// Doc is a free-form description (carried through JSON, never parsed).
	Doc string `json:"doc,omitempty"`

	Protocol Protocol `json:"protocol"`
	N        int      `json:"n"`
	T        int      `json:"t,omitempty"`       // Byzantine nodes (the last T ids)
	Crashes  int      `json:"crashes,omitempty"` // crash-faulty correct nodes

	Lambda float64   `json:"lambda,omitempty"` // token rate per node per Δ (randomized protocols)
	Rates  []float64 `json:"rates,omitempty"`  // per-node rates ("hashing power"); overrides Lambda
	Delta  float64   `json:"delta,omitempty"`  // synchrony bound; 0 means 1.0
	K      int       `json:"k,omitempty"`      // decision threshold (randomized protocols)
	Rounds int       `json:"rounds,omitempty"` // sync protocol; 0 means T+1

	TieBreak TieBreak `json:"tiebreak,omitempty"` // chain protocol; "" means random
	Pivot    Pivot    `json:"pivot,omitempty"`    // dag protocol; "" means ghost
	Confirm  int      `json:"confirm,omitempty"`  // chain/dag confirmation depth

	Attack Attack `json:"attack,omitempty"` // "" means silent
	Margin int    `json:"margin,omitempty"` // last-minute attack: burst margin; 0 means 6
	// AttackParams overrides individual template parameters of a
	// parameterized attack (see the attack's Schema, printed by amrun
	// -list). Unknown names and out-of-range values are rejected at Bind.
	AttackParams map[string]Value `json:"attack_params,omitempty"`

	// Inputs: "same" (all +1, default), "same:-1", "split:<ones>", or
	// "random".
	Inputs string `json:"inputs,omitempty"`

	Access     Access `json:"access,omitempty"`      // "" means poisson
	FreshReads bool   `json:"fresh_reads,omitempty"` // ablation: honest nodes read at grant time

	// Topology selects the network graph the appends propagate over; ""
	// (or "complete") keeps the Δ-bounded oracle path. The remaining
	// fields shape the graph and its per-link delays; they are inert on
	// the complete topology, so sweeps may mix it with sparse graphs.
	Topology       Topology           `json:"topology,omitempty"`
	TopologyParams map[string]float64 `json:"topology_params,omitempty"` // generator shape (k, cols, beta, m)
	TopologyTable  [][]float64        `json:"topology_table,omitempty"`  // explicit [from, to, latency-in-Δ] rows (topology "table")
	LinkDelay      float64            `json:"link_delay,omitempty"`      // base per-link latency in Δ; 0 means 0.5
	LinkJitter     float64            `json:"link_jitter,omitempty"`     // delay spread fraction in [0,1); 0 means the model default
	DelayDist      string             `json:"delay_dist,omitempty"`      // per-link delay distribution; "" means fixed

	StallAtSize   int     `json:"stall_at,omitempty"`        // temporal-asynchrony blackout trigger size
	StallFor      float64 `json:"stall_for,omitempty"`       // blackout duration in Δ; 0 means 8
	AsyncDelayMax float64 `json:"async_delay_max,omitempty"` // honest token-to-append delay bound in Δ (Theorem 5.1)

	// Window > 0 runs the memory in windowed (bounded-live) mode: every Δ
	// the harness retires messages no party can reach any more, keeping at
	// least Window live. Decisions are unchanged. Chain/dag protocols with
	// the silent or flip attack only; must cover the decision lookback
	// k+confirm; incompatible with topology/async/stall and Checkpoint.
	Window int `json:"window,omitempty"`
	// Checkpoint reuses trial prefixes across a confirm sweep: the lowest
	// confirmation point of each sweep group snapshots every trial at its
	// first decision, and deeper-confirmation points fast-forward from the
	// snapshot instead of re-simulating the shared prefix. Results are
	// byte-identical with or without it. Chain/dag with silent/flip only.
	Checkpoint bool `json:"checkpoint,omitempty"`

	Seed   uint64 `json:"seed,omitempty"`   // base seed; trial i uses Seed+i
	Trials int    `json:"trials,omitempty"` // trials per sweep point; 0 means 1

	// Metrics names the metric extractors evaluated per point (see the
	// Metrics registry); empty means ok/validity/agreement/termination.
	Metrics []string `json:"metrics,omitempty"`

	// Sweep declares the parameter axes: the cartesian product of the axis
	// values is run, first axis outermost. An empty sweep is one point.
	Sweep []Axis `json:"sweep,omitempty"`
}

// Axis is one sweep dimension: a parameter name and the values it takes.
type Axis struct {
	Name   string  `json:"axis"`
	Values []Value `json:"values"`
}

// Value is one sweep value: a number or a string, matching the JSON
// representation ("values": [0.05, 0.25] vs ["ghost", "longest"]).
type Value struct {
	Num   float64
	Str   string
	IsStr bool
}

// MarshalJSON emits the number or the string.
func (v Value) MarshalJSON() ([]byte, error) {
	if v.IsStr {
		return json.Marshal(v.Str)
	}
	return json.Marshal(v.Num)
}

// UnmarshalJSON accepts a JSON number or string.
func (v *Value) UnmarshalJSON(b []byte) error {
	s := strings.TrimSpace(string(b))
	if strings.HasPrefix(s, `"`) {
		v.IsStr = true
		v.Num = 0
		return json.Unmarshal(b, &v.Str)
	}
	v.IsStr = false
	v.Str = ""
	return json.Unmarshal(b, &v.Num)
}

// Text is the display form of the value.
func (v Value) Text() string {
	if v.IsStr {
		return v.Str
	}
	return strconv.FormatFloat(v.Num, 'g', -1, 64)
}

// ParseValue turns a CLI token into a Value: numbers become numeric,
// anything else stays a string.
func ParseValue(tok string) Value {
	if f, err := strconv.ParseFloat(tok, 64); err == nil {
		return Value{Num: f}
	}
	return Value{Str: tok, IsStr: true}
}

// ParseAttackParams parses a CLI "name=value,name=value" list into the
// spec's attack_params map. Values follow ParseValue (numbers become
// numeric); names and ranges are validated at Bind against the bound
// attack's schema.
func ParseAttackParams(s string) (map[string]Value, error) {
	if s == "" {
		return nil, nil
	}
	params := map[string]Value{}
	for _, tok := range strings.Split(s, ",") {
		name, val, ok := strings.Cut(strings.TrimSpace(tok), "=")
		if !ok || name == "" || val == "" {
			return nil, fmt.Errorf("scenario: attack parameter %q is not of the form name=value", tok)
		}
		params[name] = ParseValue(val)
	}
	return params, nil
}

// ParseAxis parses a CLI sweep flag of the form "axis=v1,v2,...".
func ParseAxis(s string) (Axis, error) {
	name, vals, ok := strings.Cut(s, "=")
	if !ok || name == "" || vals == "" {
		return Axis{}, fmt.Errorf("scenario: sweep %q is not of the form axis=v1,v2,...", s)
	}
	ax := Axis{Name: strings.TrimSpace(name)}
	for _, tok := range strings.Split(vals, ",") {
		tok = strings.TrimSpace(tok)
		if tok == "" {
			return Axis{}, fmt.Errorf("scenario: sweep %q has an empty value", s)
		}
		ax.Values = append(ax.Values, ParseValue(tok))
	}
	if topoParamAxis(ax.Name) != "" || attackParamAxis(ax.Name) != "" {
		return ax, nil
	}
	for _, known := range SweepAxes() {
		if ax.Name == known {
			return ax, nil
		}
	}
	return Axis{}, fmt.Errorf("scenario: unknown sweep axis %q (have %s)", ax.Name, strings.Join(SweepAxes(), ", "))
}

// SweepAxes lists the parameter names a sweep may vary. In addition to
// these, "topo:<param>" sweeps one topology generator parameter (e.g.
// "topo:beta" for the small-world rewiring probability) and
// "attack:<param>" sweeps one attack template parameter (e.g.
// "attack:fork_period" for the chain templates' fork schedule).
func SweepAxes() []string {
	return []string{
		"n", "t", "crashes", "lambda", "delta", "k", "rounds", "confirm",
		"margin", "stall_at", "stall_for", "async_delay_max", "window", "seed",
		"protocol", "tiebreak", "pivot", "attack", "inputs", "access",
		"fresh_reads", "topology", "link_delay", "link_jitter", "delay_dist",
		"topo:<param>", "attack:<param>",
	}
}

// topoParamAxis returns the topology parameter name a "topo:<param>" axis
// addresses, or "" when the axis is not of that form.
func topoParamAxis(axis string) string {
	if p, ok := strings.CutPrefix(axis, "topo:"); ok && p != "" {
		return p
	}
	return ""
}

// attackParamAxis returns the attack template parameter an
// "attack:<param>" axis addresses, or "" when the axis is not of that
// form. Name and value validation happen at Bind, against the bound
// attack's schema.
func attackParamAxis(axis string) string {
	if p, ok := strings.CutPrefix(axis, "attack:"); ok && p != "" {
		return p
	}
	return ""
}

// with returns the spec with one axis set to one value.
func (s Spec) with(axis string, v Value) (Spec, error) {
	setInt := func(dst *int) error {
		if v.IsStr {
			return fmt.Errorf("scenario: axis %q needs numeric values, got %q", axis, v.Str)
		}
		n := int(v.Num)
		if float64(n) != v.Num {
			return fmt.Errorf("scenario: axis %q needs integer values, got %v", axis, v.Num)
		}
		*dst = n
		return nil
	}
	setFloat := func(dst *float64) error {
		if v.IsStr {
			return fmt.Errorf("scenario: axis %q needs numeric values, got %q", axis, v.Str)
		}
		*dst = v.Num
		return nil
	}
	setStr := func(set func(string)) error {
		if !v.IsStr {
			return fmt.Errorf("scenario: axis %q needs string values, got %v", axis, v.Num)
		}
		set(v.Str)
		return nil
	}
	var err error
	if param := attackParamAxis(axis); param != "" {
		// Copy-on-write, like topo:<param>: sweep points must not alias
		// one params map.
		params := make(map[string]Value, len(s.AttackParams)+1)
		for k, pv := range s.AttackParams {
			params[k] = pv
		}
		params[param] = v
		s.AttackParams = params
		return s, nil
	}
	if param := topoParamAxis(axis); param != "" {
		if v.IsStr {
			return s, fmt.Errorf("scenario: axis %q needs numeric values, got %q", axis, v.Str)
		}
		// Copy-on-write: sweep points must not alias one params map.
		params := make(map[string]float64, len(s.TopologyParams)+1)
		for k, pv := range s.TopologyParams {
			params[k] = pv
		}
		params[param] = v.Num
		s.TopologyParams = params
		return s, nil
	}
	switch axis {
	case "n":
		err = setInt(&s.N)
	case "t":
		err = setInt(&s.T)
	case "crashes":
		err = setInt(&s.Crashes)
	case "k":
		err = setInt(&s.K)
	case "rounds":
		err = setInt(&s.Rounds)
	case "confirm":
		err = setInt(&s.Confirm)
	case "margin":
		err = setInt(&s.Margin)
	case "stall_at":
		err = setInt(&s.StallAtSize)
	case "window":
		err = setInt(&s.Window)
	case "lambda":
		err = setFloat(&s.Lambda)
	case "delta":
		err = setFloat(&s.Delta)
	case "stall_for":
		err = setFloat(&s.StallFor)
	case "link_delay":
		err = setFloat(&s.LinkDelay)
	case "link_jitter":
		err = setFloat(&s.LinkJitter)
	case "async_delay_max":
		err = setFloat(&s.AsyncDelayMax)
	case "seed":
		var n int
		if err = setInt(&n); err == nil {
			s.Seed = uint64(n)
		}
	case "protocol":
		err = setStr(func(x string) { s.Protocol = Protocol(x) })
	case "tiebreak":
		err = setStr(func(x string) { s.TieBreak = TieBreak(x) })
	case "pivot":
		err = setStr(func(x string) { s.Pivot = Pivot(x) })
	case "attack":
		err = setStr(func(x string) { s.Attack = Attack(x) })
	case "inputs":
		err = setStr(func(x string) { s.Inputs = x })
	case "access":
		err = setStr(func(x string) { s.Access = Access(x) })
	case "topology":
		err = setStr(func(x string) { s.Topology = Topology(x) })
	case "delay_dist":
		err = setStr(func(x string) { s.DelayDist = x })
	case "fresh_reads":
		switch {
		case v.IsStr && v.Str == "true":
			s.FreshReads = true
		case v.IsStr && v.Str == "false":
			s.FreshReads = false
		case !v.IsStr:
			s.FreshReads = v.Num != 0
		default:
			err = fmt.Errorf("scenario: axis fresh_reads needs true/false or 0/1, got %q", v.Str)
		}
	default:
		err = fmt.Errorf("scenario: unknown sweep axis %q (have %s)", axis, strings.Join(SweepAxes(), ", "))
	}
	return s, err
}

// Point is one concrete spec of a sweep, with its coordinates along the
// declared axes (empty for an unswept spec).
type Point struct {
	Spec   Spec
	Coords []Value // aligned with the root spec's Sweep axes
}

// Expand materializes the sweep as concrete points: the cartesian product
// of the axis values, first axis outermost, each point's Sweep cleared.
func (s Spec) Expand() ([]Point, error) {
	base := s
	base.Sweep = nil
	points := []Point{{Spec: base}}
	for i, ax := range s.Sweep {
		if len(ax.Values) == 0 {
			return nil, fmt.Errorf("scenario: sweep axis %q has no values", ax.Name)
		}
		// A repeated axis would silently last-write-win: only the innermost
		// occurrence would shape the point, while the outer one still
		// multiplied the sweep and mislabeled the coordinates.
		for _, prev := range s.Sweep[:i] {
			if prev.Name == ax.Name {
				return nil, fmt.Errorf("scenario: sweep axis %q declared twice", ax.Name)
			}
		}
		next := make([]Point, 0, len(points)*len(ax.Values))
		for _, p := range points {
			for _, v := range ax.Values {
				sp, err := p.Spec.with(ax.Name, v)
				if err != nil {
					return nil, err
				}
				coords := append(append([]Value(nil), p.Coords...), v)
				next = append(next, Point{Spec: sp, Coords: coords})
			}
		}
		points = next
	}
	return points, nil
}

// ParseSpec decodes a JSON spec, rejecting unknown fields so example
// files cannot silently rot.
func ParseSpec(data []byte) (Spec, error) {
	var s Spec
	dec := json.NewDecoder(strings.NewReader(string(data)))
	dec.DisallowUnknownFields()
	if err := dec.Decode(&s); err != nil {
		return Spec{}, fmt.Errorf("scenario: bad spec: %w", err)
	}
	return s, nil
}

package scenario

import (
	"fmt"
	"math"
	"strconv"
	"strings"

	"repro/internal/topology"
	"repro/internal/xrand"
)

// Topology names the network graph family appends propagate over.
type Topology string

// Topologies. Complete is the Δ-bounded oracle path the paper assumes;
// the sparse families test how far its predictions survive when
// propagation depends on where the author sits in the graph.
const (
	TopoComplete   Topology = "complete"   // fully connected: the oracle fast path (the default)
	TopoRing       Topology = "ring"       // circulant lattice, each node linked to its k nearest per side
	TopoGrid       Topology = "grid"       // 2D mesh with 4-neighborhoods
	TopoSmallWorld Topology = "smallworld" // Watts–Strogatz rewired ring lattice
	TopoScaleFree  Topology = "scalefree"  // Barabási–Albert preferential attachment
	TopoTable      Topology = "table"      // explicit link table from the spec
)

// topologyStream is the xrand stream the seeded generators draw from, so
// the graph never shares randomness with the run it hosts. The graph is
// built once per sweep point from the spec's base seed: trials vary the
// authority and node randomness, not the network.
const topologyStream = 0x7090

// TopologyDef builds a spec's graph. linkDelay is the base per-link
// latency in simulator time units (the spec's LinkDelay, already scaled
// by Δ); delta is the scaled Δ itself, which the table topology applies
// to its explicit per-row latencies. Generators read their shape
// parameters from spec.TopologyParams and ignore parameters they do not
// use, so one sweep may mix families.
type TopologyDef func(s *Spec, rng *xrand.PCG, linkDelay, delta float64) (*topology.Graph, error)

// ParseTopologyParams parses a CLI "k=2,beta=0.3" list into the spec's
// TopologyParams map; an empty string yields nil (generator defaults).
func ParseTopologyParams(s string) (map[string]float64, error) {
	if s == "" {
		return nil, nil
	}
	params := map[string]float64{}
	for _, tok := range strings.Split(s, ",") {
		name, val, ok := strings.Cut(strings.TrimSpace(tok), "=")
		if !ok || name == "" {
			return nil, fmt.Errorf("scenario: topology parameter %q is not of the form name=value", tok)
		}
		f, err := strconv.ParseFloat(val, 64)
		if err != nil {
			return nil, fmt.Errorf("scenario: topology parameter %q needs a numeric value, got %q", name, val)
		}
		params[name] = f
	}
	return params, nil
}

// topoParam reads one generator parameter with a default.
func topoParam(s *Spec, name string, def float64) float64 {
	if v, ok := s.TopologyParams[name]; ok {
		return v
	}
	return def
}

// topoIntParam reads one generator parameter that must be a positive
// integer.
func topoIntParam(s *Spec, name string, def int) (int, error) {
	v := topoParam(s, name, float64(def))
	n := int(v)
	if float64(n) != v || n <= 0 {
		return 0, fmt.Errorf("scenario: topology parameter %q must be a positive integer, got %v", name, v)
	}
	return n, nil
}

func init() {
	Topologies.Register(string(TopoComplete),
		"fully connected mesh: the Δ-bounded oracle path (the default)",
		func(s *Spec, _ *xrand.PCG, linkDelay, _ float64) (*topology.Graph, error) {
			return topology.Complete(s.N, linkDelay), nil
		})
	Topologies.Register(string(TopoRing),
		"circulant ring lattice; params: k nearest neighbors per side (default 2)",
		func(s *Spec, _ *xrand.PCG, linkDelay, _ float64) (*topology.Graph, error) {
			k, err := topoIntParam(s, "k", 2)
			if err != nil {
				return nil, err
			}
			if 2*k >= s.N {
				return nil, fmt.Errorf("scenario: ring needs 2k < n, got k=%d n=%d", k, s.N)
			}
			return topology.Ring(s.N, k, linkDelay), nil
		})
	Topologies.Register(string(TopoGrid),
		"2D mesh with 4-neighborhoods; params: cols (default ⌈√n⌉)",
		func(s *Spec, _ *xrand.PCG, linkDelay, _ float64) (*topology.Graph, error) {
			cols, err := topoIntParam(s, "cols", int(math.Ceil(math.Sqrt(float64(s.N)))))
			if err != nil {
				return nil, err
			}
			if cols > s.N {
				return nil, fmt.Errorf("scenario: grid needs cols <= n, got cols=%d n=%d", cols, s.N)
			}
			return topology.Grid(s.N, cols, linkDelay), nil
		})
	Topologies.Register(string(TopoSmallWorld),
		"Watts–Strogatz rewired lattice; params: k per side (default 2), beta rewiring probability (default 0.2)",
		func(s *Spec, rng *xrand.PCG, linkDelay, _ float64) (*topology.Graph, error) {
			k, err := topoIntParam(s, "k", 2)
			if err != nil {
				return nil, err
			}
			if 2*k >= s.N {
				return nil, fmt.Errorf("scenario: smallworld needs 2k < n, got k=%d n=%d", k, s.N)
			}
			beta := topoParam(s, "beta", 0.2)
			if beta < 0 || beta > 1 {
				return nil, fmt.Errorf("scenario: smallworld beta must be in [0,1], got %v", beta)
			}
			return topology.WattsStrogatz(rng, s.N, k, beta, linkDelay), nil
		})
	Topologies.Register(string(TopoScaleFree),
		"Barabási–Albert preferential attachment; params: m links per arrival (default 2)",
		func(s *Spec, rng *xrand.PCG, linkDelay, _ float64) (*topology.Graph, error) {
			m, err := topoIntParam(s, "m", 2)
			if err != nil {
				return nil, err
			}
			if s.N < m+1 {
				return nil, fmt.Errorf("scenario: scalefree needs n >= m+1, got m=%d n=%d", m, s.N)
			}
			return topology.BarabasiAlbert(rng, s.N, m, linkDelay), nil
		})
	Topologies.Register(string(TopoTable),
		"explicit link table from the spec's topology_table rows ([from, to] or [from, to, latency-in-Δ])",
		func(s *Spec, _ *xrand.PCG, _, delta float64) (*topology.Graph, error) {
			if len(s.TopologyTable) == 0 {
				return nil, fmt.Errorf("scenario: topology %q needs topology_table rows", TopoTable)
			}
			links, err := topology.TableLinks(s.TopologyTable)
			if err != nil {
				return nil, fmt.Errorf("scenario: %w", err)
			}
			for i := range links {
				links[i].Lat *= delta
			}
			g, err := topology.FromTable(s.N, links)
			if err != nil {
				return nil, fmt.Errorf("scenario: %w", err)
			}
			return g, nil
		})
}

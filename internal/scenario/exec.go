package scenario

import (
	"encoding/json"

	"repro/internal/agreement"
	"repro/internal/runner"
)

// Options tunes sweep execution (not the scenario itself — that lives in
// the Spec).
type Options struct {
	// Workers caps trial parallelism; 0 means GOMAXPROCS (runner's default).
	Workers int
}

// MetricValue is one aggregated metric at one sweep point.
type MetricValue struct {
	Name string     `json:"name"`
	Kind MetricKind `json:"-"`
	// Value is the success rate (KindRate) or the mean over the defined
	// runs (KindMean; NaN when no run defined the metric).
	Value float64 `json:"value"`
	// Count is the number of successes (KindRate) or of runs where the
	// metric was defined (KindMean).
	Count int `json:"count"`
}

// Ratio renders a rate metric as successes/trials.
func (m MetricValue) Ratio(trials int) runner.Ratio { return runner.Rate(m.Count, trials) }

// PointResult is one sweep point: the concrete spec, its coordinates
// along the sweep axes, and the aggregated metrics.
type PointResult struct {
	Spec    Spec          `json:"spec"`
	Coords  []Value       `json:"coords,omitempty"`
	Trials  int           `json:"trials"`
	Metrics []MetricValue `json:"metrics"`
}

// SweepResult is a fully executed spec: every cartesian point with its
// metrics, in sweep order (first axis outermost).
type SweepResult struct {
	Spec   Spec          `json:"spec"`
	Axes   []string      `json:"axes,omitempty"`
	Points []PointResult `json:"points"`
	// Reuse reports checkpointed prefix reuse; nil unless the spec enables
	// Checkpoint.
	Reuse *ReuseStats `json:"reuse,omitempty"`
}

// ReuseStats counts checkpointed trial prefixes over one sweep execution.
type ReuseStats struct {
	// Captured is the number of trials that snapshotted their prefix (the
	// lowest-confirmation point of each sweep group).
	Captured int `json:"captured"`
	// Resumed is the number of trials fast-forwarded from a snapshot
	// instead of re-simulating the shared prefix.
	Resumed int `json:"resumed"`
}

// cpGroup holds the per-trial checkpoints captured by the first-executed
// point of one sweep group (all axes equal except confirmation depth).
type cpGroup struct {
	confirm int
	cps     []*agreement.Checkpoint
}

// checkpointKey buckets sweep points that differ only in confirmation
// depth: the serialized spec with Confirm zeroed.
func checkpointKey(s Spec) string {
	s.Confirm = 0
	b, err := json.Marshal(s)
	if err != nil {
		panic(err) // Spec is a plain data struct; marshal cannot fail
	}
	return string(b)
}

// MustRunSpec is RunSpec for specs known valid (experiment code with
// compiled-in specs); it panics on error.
func MustRunSpec(spec Spec, o Options) *SweepResult {
	res, err := RunSpec(spec, o)
	if err != nil {
		panic(err)
	}
	return res
}

// metricAcc accumulates one point's trials in seed order. TrialsReduce
// folds sequentially, so in-place slice mutation is safe.
type metricAcc struct {
	sum []float64
	cnt []int
}

// RunSpec expands the spec's sweep, binds each point once, runs its
// trials on the shared worker pool and aggregates the named metrics.
// Binding or metric errors surface per point, before any trial runs.
func RunSpec(spec Spec, o Options) (*SweepResult, error) {
	names, defs, err := ResolveMetrics(spec)
	if err != nil {
		return nil, err
	}
	trials := spec.Trials
	if trials <= 0 {
		trials = 1
	}

	points, err := spec.Expand()
	if err != nil {
		return nil, err
	}
	out := &SweepResult{Spec: spec, Points: make([]PointResult, 0, len(points))}
	for _, ax := range spec.Sweep {
		out.Axes = append(out.Axes, ax.Name)
	}
	// Checkpointed prefix reuse across confirm-sweep groups: the first
	// point of each group (lowest confirmation when the axis ascends)
	// captures one checkpoint per trial; every later point with a deeper
	// confirmation resumes from it. Trial i's checkpoint lives at slot i,
	// so capture and resume are independent of the worker count — the
	// fan-out writes disjoint slots and the next point starts only after
	// the reduce barrier.
	var store map[string]*cpGroup
	if spec.Checkpoint {
		store = map[string]*cpGroup{}
		out.Reuse = &ReuseStats{}
	}
	for _, pt := range points {
		b, err := Bind(pt.Spec)
		if err != nil {
			return nil, err
		}
		extract, err := b.MetricExtractors(defs)
		if err != nil {
			return nil, err
		}
		run := b.mustRun
		var captured []*agreement.Checkpoint
		if pt.Spec.Checkpoint && !b.sync {
			key := checkpointKey(pt.Spec)
			base := pt.Spec.Seed
			switch grp := store[key]; {
			case grp == nil:
				captured = make([]*agreement.Checkpoint, trials)
				store[key] = &cpGroup{confirm: pt.Spec.Confirm, cps: captured}
				sink := captured
				run = func(seed uint64) *Result {
					cfg := b.randomizedConfig(seed, nil)
					idx := int(seed - base)
					cfg.CheckpointSink = func(cp *agreement.Checkpoint) { sink[idx] = cp }
					return fromRandomized(agreement.MustRun(cfg, b.rule, b.newAdv()))
				}
			case grp.confirm < pt.Spec.Confirm:
				// Valid resume: a deeper confirmation can only postpone the
				// first decision, so the capturing run and this one evolve
				// identically up to the capture instant.
				resumes := grp.cps
				run = func(seed uint64) *Result {
					cfg := b.randomizedConfig(seed, nil)
					if cp := resumes[int(seed-base)]; cp != nil {
						cfg.ResumeFrom = cp
					}
					return fromRandomized(agreement.MustRun(cfg, b.rule, b.newAdv()))
				}
				for _, cp := range resumes {
					if cp != nil {
						out.Reuse.Resumed++
					}
				}
			}
		}
		acc := runner.TrialsReduce(trials, pt.Spec.Seed, o.Workers, metricAcc{},
			trialValues(run, extract), metricAcc.fold)
		for _, cp := range captured {
			if cp != nil {
				out.Reuse.Captured++
			}
		}
		out.Points = append(out.Points, PointResult{Spec: pt.Spec, Coords: pt.Coords,
			Trials: trials, Metrics: acc.finalize(names, defs, trials)})
	}
	return out, nil
}

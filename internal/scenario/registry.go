// Package scenario is the declarative layer over the protocol harnesses:
// named registries of protocols, tie-breaking rules, pivot rules,
// adversaries, access models and metric extractors, plus a JSON-serializable
// Spec that names one (protocol, adversary, parameters) combination — or a
// whole sweep over them — and can be bound and executed without writing Go.
//
// Every component is resolvable from a string and enumerable for help
// output, so the amrun CLI, the experiments package and user-supplied
// examples/scenarios/*.json files all draw from the same single source of
// truth. Binding (Bind) resolves every name exactly once; the per-trial
// path runs entirely on the resolved closures, so the registry adds no
// lookup to the hot loop.
package scenario

import (
	"fmt"
	"strings"

	"repro/internal/adversary"
	"repro/internal/agreement"
	"repro/internal/agreement/chainba"
	"repro/internal/agreement/dagba"
	"repro/internal/agreement/syncba"
	"repro/internal/agreement/timestamp"
	"repro/internal/appendmem"
	"repro/internal/chain"
)

// Protocol selects the agreement algorithm.
type Protocol string

// Protocols: the paper's four agreement algorithms.
const (
	Sync      Protocol = "sync"      // Algorithm 1 — deterministic BA, synchronous rounds (§3.2)
	Timestamp Protocol = "timestamp" // Algorithm 4 — absolute-timestamp baseline (§5.1)
	Chain     Protocol = "chain"     // Algorithm 5 — longest chain with a tie-breaking rule (§5.2)
	Dag       Protocol = "dag"       // Algorithm 6 — BlockDAG with a pivot rule (§5.3)
)

// TieBreak selects the chain protocol's tie-breaking rule.
type TieBreak string

// Tie-breaking rules (chain protocol only).
const (
	TieFirst       TieBreak = "first"
	TieRandom      TieBreak = "random"
	TieAdversarial TieBreak = "adversarial"
)

// Pivot selects the DAG protocol's pivot rule.
type Pivot string

// Pivot rules (dag protocol only).
const (
	PivotGhost   Pivot = "ghost"
	PivotLongest Pivot = "longest"
)

// Attack names the Byzantine strategy.
type Attack string

// Attacks. Silent works everywhere; the rest are protocol-specific (see
// the registry docs printed by amrun -list).
const (
	AttackSilent       Attack = "silent"
	AttackFlip         Attack = "flip"          // timestamp/chain/dag: honest structure, flipped vote, fresh reads
	AttackFork         Attack = "fork"          // chain: Theorem 5.3 sibling forks
	AttackTieBreak     Attack = "tiebreak"      // chain: Theorem 5.4 fresh-tip extension
	AttackPrivateChain Attack = "private-chain" // dag: Lemma 5.5 pivot-extending chains
	AttackLastMinute   Attack = "last-minute"   // dag: Lemma 5.5's literal pre-decision burst
	AttackPrivateFork  Attack = "private-fork"  // dag: genesis-rooted private chain (the GHOST-motivating attack)
	AttackEquivocate   Attack = "equivocate"    // chain: alternating fork/extend
	AttackDelayedChain Attack = "delayed-chain" // sync: Lemma 3.1 hidden chain
	AttackLoudFlip     Attack = "loud-flip"     // sync: on-schedule flipped votes
	AttackRandom       Attack = "random"        // any randomized protocol: well-formed fuzzing noise
)

// Access names the token authority discipline.
type Access string

// Access models.
const (
	AccessPoisson    Access = "poisson"     // §1.1's Poisson process (the default; the PoW reading)
	AccessRoundRobin Access = "round-robin" // burst-free deterministic authority at the same aggregate rate
)

// Registry is an ordered name → definition map: registration order is
// enumeration order, lookups are exact, and every entry carries a one-line
// doc for -list output.
type Registry[V any] struct {
	order []string
	m     map[string]V
	docs  map[string]string
}

func newRegistry[V any]() *Registry[V] {
	return &Registry[V]{m: map[string]V{}, docs: map[string]string{}}
}

// Register adds a definition; duplicate names panic (registries are wired
// at init time, a duplicate is a programming error).
func (r *Registry[V]) Register(name, doc string, v V) {
	if _, dup := r.m[name]; dup {
		panic("scenario: duplicate registration " + name)
	}
	r.order = append(r.order, name)
	r.m[name] = v
	r.docs[name] = doc
}

// Lookup resolves a name.
func (r *Registry[V]) Lookup(name string) (V, bool) {
	v, ok := r.m[name]
	return v, ok
}

// Names enumerates the registered names in registration order. The slice
// is freshly allocated.
func (r *Registry[V]) Names() []string {
	return append([]string(nil), r.order...)
}

// Doc returns the one-line description of a registered name.
func (r *Registry[V]) Doc(name string) string { return r.docs[name] }

// Help renders "a | b | c" from the registered names, for flag usage text.
func (r *Registry[V]) Help() string { return strings.Join(r.order, " | ") }

// ProtocolDef is one registered protocol: either the synchronous-round
// harness (Sync true) or a randomized-access honest rule built from the
// spec's sub-options (tiebreak, pivot, confirm).
type ProtocolDef struct {
	// Sync marks the synchronous-round harness (Algorithm 1); Rule is nil.
	Sync bool
	// Rule builds the protocol's honest rule from the spec (nil for Sync).
	Rule func(s *Spec) (agreement.HonestRule, error)
}

// TieBreakDef builds a chain tie-breaker; n and t are the spec's roster
// shape (the adversarial rule needs to know who is Byzantine).
type TieBreakDef func(n, t int) chain.TieBreaker

// AttackDef is one registered Byzantine strategy. Exactly one constructor
// is consulted per bind: NewSync for the sync protocol, New otherwise.
// Factories return fresh adversary instances — trial fan-outs run
// concurrently and adversaries carry per-run state.
type AttackDef struct {
	// Protocols lists the randomized protocols the attack applies to;
	// empty means every randomized protocol. (Sync applicability is
	// signalled by NewSync being non-nil.)
	Protocols []Protocol
	// New builds the adversary factory for randomized protocols; rule is
	// the already-resolved honest rule (the flip attack mirrors it).
	New func(s *Spec, rule agreement.HonestRule) (func() agreement.Adversary, error)
	// NewSync builds the adversary factory for the sync protocol.
	NewSync func(s *Spec) (func() syncba.Adversary, error)
	// Schema declares the attack's settable template parameters; nil for
	// attacks that are not presets of a template (they reject
	// attack_params). Preset is the attack's default parameter assignment
	// — the point in Schema space that reproduces the named strategy.
	Schema adversary.Schema
	Preset adversary.Params
}

// ResolveParams resolves the attack's parameter assignment for one spec:
// the preset, adjusted by spec-level sugar (margin overrides a preset's
// StartWithin), then the spec's attack_params overrides, each validated
// against the schema. Attacks without a schema accept no overrides.
func (d AttackDef) ResolveParams(s *Spec) (adversary.Params, error) {
	p := d.Preset
	if s.Margin > 0 && p.StartWithin > 0 {
		p.StartWithin = s.Margin
	}
	if len(s.AttackParams) == 0 {
		return p, nil
	}
	if d.Schema == nil {
		return adversary.Params{}, fmt.Errorf("scenario: attack %q takes no parameters (parameterized attacks: %s)",
			s.Attack, strings.Join(ParameterizedAttacks(), " | "))
	}
	overrides := make(map[string]adversary.ParamValue, len(s.AttackParams))
	for name, v := range s.AttackParams {
		overrides[name] = adversary.ParamValue{Num: v.Num, Str: v.Str, IsStr: v.IsStr}
	}
	rp, err := d.Schema.Resolve(p, overrides)
	if err != nil {
		return adversary.Params{}, fmt.Errorf("scenario: attack %q: %w", s.Attack, err)
	}
	return rp, nil
}

// AttackParamLines renders one attack's parameter schema as help lines —
// name, type, range, preset default and doc — so amrun/amsearch -list
// make the search space discoverable without reading source. Nil for
// unparameterized attacks.
func AttackParamLines(name string) []string {
	def, ok := Attacks.Lookup(name)
	if !ok || def.Schema == nil {
		return nil
	}
	out := make([]string, 0, len(def.Schema))
	for _, ps := range def.Schema {
		out = append(out, fmt.Sprintf("%-13s %-6s %-15s default %-9s %s",
			ps.Name, ps.Kind, ps.Range(), ps.Value(def.Preset).Text(), ps.Doc))
	}
	return out
}

// ExplicitAttackParams resolves the spec's attack parameters (preset,
// margin sugar, attack_params overrides) and renders the full assignment
// — every schema parameter, not just the overridden ones — as a spec
// attack_params map. A counterexample spec written with the explicit
// assignment stays a faithful regression even if a preset's defaults
// drift later. Errors on unparameterized attacks.
func ExplicitAttackParams(s Spec) (map[string]Value, error) {
	attackName := s.Attack
	if attackName == "" {
		attackName = AttackSilent
	}
	def, ok := Attacks.Lookup(string(attackName))
	if !ok {
		return nil, fmt.Errorf("scenario: unknown attack %q (have %s)", attackName, Attacks.Help())
	}
	if def.Schema == nil {
		return nil, fmt.Errorf("scenario: attack %q takes no parameters (parameterized attacks: %s)",
			attackName, strings.Join(ParameterizedAttacks(), " | "))
	}
	p, err := def.ResolveParams(&s)
	if err != nil {
		return nil, err
	}
	out := make(map[string]Value, len(def.Schema))
	for _, ps := range def.Schema {
		v := ps.Value(p)
		out[ps.Name] = Value{Num: v.Num, Str: v.Str, IsStr: v.IsStr}
	}
	return out, nil
}

// ParameterizedAttacks enumerates the attacks carrying a parameter
// schema, in registration order.
func ParameterizedAttacks() []string {
	var out []string
	for _, name := range Attacks.order {
		if Attacks.m[name].Schema != nil {
			out = append(out, name)
		}
	}
	return out
}

// chainTemplate builds the New constructor of a ChainAttack preset; the
// def's ResolveParams applies spec-level overrides at Bind time.
func chainTemplate(name Attack) func(*Spec, agreement.HonestRule) (func() agreement.Adversary, error) {
	return func(s *Spec, _ agreement.HonestRule) (func() agreement.Adversary, error) {
		def, _ := Attacks.Lookup(string(name))
		p, err := def.ResolveParams(s)
		if err != nil {
			return nil, err
		}
		return func() agreement.Adversary { return &adversary.ChainAttack{P: p} }, nil
	}
}

// dagTemplate builds the New constructor of a DagAttack preset. The
// template's pivot rule follows the spec's (honest) pivot choice, like
// the legacy strategies did.
func dagTemplate(name Attack) func(*Spec, agreement.HonestRule) (func() agreement.Adversary, error) {
	return func(s *Spec, _ agreement.HonestRule) (func() agreement.Adversary, error) {
		def, _ := Attacks.Lookup(string(name))
		p, err := def.ResolveParams(s)
		if err != nil {
			return nil, err
		}
		pivot, err := resolvePivot(s)
		if err != nil {
			return nil, err
		}
		return func() agreement.Adversary { return &adversary.DagAttack{P: p, Pivot: pivot} }, nil
	}
}

// AccessDef applies one access-model choice to a randomized config.
type AccessDef func(cfg *agreement.RandomizedConfig)

// The process-wide registries. They are populated here and extended by
// metrics.go and topologies.go; all writes happen at package init, so
// concurrent reads are safe.
var (
	Protocols    = newRegistry[ProtocolDef]()
	TieBreaks    = newRegistry[TieBreakDef]()
	Pivots       = newRegistry[dagba.PivotRule]()
	Attacks      = newRegistry[AttackDef]()
	AccessModels = newRegistry[AccessDef]()
	Metrics      = newRegistry[MetricDef]()
	Topologies   = newRegistry[TopologyDef]()
)

// appliesTo reports whether the attack covers the given randomized
// protocol (an empty Protocols list means all of them).
func (d AttackDef) appliesTo(p Protocol) bool {
	if len(d.Protocols) == 0 {
		return true
	}
	for _, q := range d.Protocols {
		if q == p {
			return true
		}
	}
	return false
}

// resolveTieBreak resolves the chain tie-breaking rule; "" means random.
func resolveTieBreak(s *Spec) (chain.TieBreaker, error) {
	name := s.TieBreak
	if name == "" {
		name = TieRandom
	}
	def, ok := TieBreaks.Lookup(string(name))
	if !ok {
		return nil, fmt.Errorf("scenario: unknown tie-break %q (have %s)", name, TieBreaks.Help())
	}
	return def(s.N, s.T), nil
}

// resolvePivot resolves the DAG pivot rule; "" means ghost.
func resolvePivot(s *Spec) (dagba.PivotRule, error) {
	name := s.Pivot
	if name == "" {
		name = PivotGhost
	}
	p, ok := Pivots.Lookup(string(name))
	if !ok {
		return 0, fmt.Errorf("scenario: unknown pivot %q (have %s)", name, Pivots.Help())
	}
	return p, nil
}

func init() {
	Protocols.Register(string(Sync),
		"Algorithm 1: deterministic BA in synchronous rounds (Theorem 3.2)",
		ProtocolDef{Sync: true})
	Protocols.Register(string(Timestamp),
		"Algorithm 4: decide on the sign of the first k values by absolute timestamp (Theorem 5.2)",
		ProtocolDef{Rule: func(s *Spec) (agreement.HonestRule, error) {
			if s.Confirm != 0 {
				return nil, fmt.Errorf("scenario: confirm depth applies to chain/dag only")
			}
			return timestamp.Rule{}, nil
		}})
	Protocols.Register(string(Chain),
		"Algorithm 5: longest chain with a tie-breaking rule (Theorems 5.3/5.4)",
		ProtocolDef{Rule: func(s *Spec) (agreement.HonestRule, error) {
			tb, err := resolveTieBreak(s)
			if err != nil {
				return nil, err
			}
			return chainba.Rule{TB: tb, Confirm: s.Confirm}, nil
		}})
	Protocols.Register(string(Dag),
		"Algorithm 6: BlockDAG ordered by a pivot rule (Theorem 5.6)",
		ProtocolDef{Rule: func(s *Spec) (agreement.HonestRule, error) {
			p, err := resolvePivot(s)
			if err != nil {
				return nil, err
			}
			return dagba.Rule{Pivot: p, Confirm: s.Confirm}, nil
		}})

	TieBreaks.Register(string(TieRandom),
		"break longest-chain ties uniformly at random (Theorem 5.4's honest rule)",
		func(n, t int) chain.TieBreaker { return chain.RandomTieBreaker{} })
	TieBreaks.Register(string(TieFirst),
		"break ties toward the first-appended tip",
		func(n, t int) chain.TieBreaker { return chain.FirstTieBreaker{} })
	TieBreaks.Register(string(TieAdversarial),
		"worst-case deterministic rule: prefer Byzantine-authored tips (Theorem 5.3)",
		func(n, t int) chain.TieBreaker {
			return chain.AdversarialTieBreaker{
				IsByzantine: func(id appendmem.NodeID) bool { return int(id) >= n-t },
			}
		})

	Pivots.Register(string(PivotGhost),
		"GHOST: follow the heaviest subtree (ref [22])", dagba.Ghost)
	Pivots.Register(string(PivotLongest),
		"longest selected-parent chain (ref [14])", dagba.Longest)

	Attacks.Register(string(AttackSilent),
		"Byzantine nodes never append (crash-mute); valid for every protocol",
		AttackDef{
			New: func(*Spec, agreement.HonestRule) (func() agreement.Adversary, error) {
				return func() agreement.Adversary { return agreement.Silent{} }, nil
			},
			NewSync: func(*Spec) (func() syncba.Adversary, error) {
				return func() syncba.Adversary { return syncba.Silent{} }, nil
			},
		})
	Attacks.Register(string(AttackFlip),
		"follow the honest structure rule with fresh reads, but always vote -1",
		AttackDef{
			New: func(s *Spec, rule agreement.HonestRule) (func() agreement.Adversary, error) {
				return func() agreement.Adversary { return &agreement.ValueFlip{Rule: rule} }, nil
			},
		})
	Attacks.Register(string(AttackRandom),
		"well-formed fuzzing noise: random values on random parents",
		AttackDef{
			New: func(*Spec, agreement.HonestRule) (func() agreement.Adversary, error) {
				return func() agreement.Adversary { return &adversary.Random{} }, nil
			},
		})
	// The chain and DAG attacks are presets of the two parameterized
	// templates (adversary.ChainAttack / adversary.DagAttack): each preset
	// pins the Params point that reproduces the original hand-coded
	// strategy byte-for-byte (differential tests in internal/adversary),
	// and attack_params / attack:<param> sweeps move off the preset.
	chainSchema := adversary.ChainSchema()
	dagSchema := adversary.DagSchema()
	Attacks.Register(string(AttackFork),
		"Theorem 5.3: fork the deepest correct block with a sibling (chain only)",
		AttackDef{
			Protocols: []Protocol{Chain},
			Schema:    chainSchema,
			Preset:    adversary.Params{ForkCount: 1, ForkPeriod: 1, Target: adversary.TargetCorrect, Fanout: 1},
			New:       chainTemplate(AttackFork),
		})
	Attacks.Register(string(AttackTieBreak),
		"Theorem 5.4: extend the freshest tip so stale honest appends are wasted (chain only)",
		AttackDef{
			Protocols: []Protocol{Chain},
			Schema:    chainSchema,
			Preset:    adversary.Params{ForkCount: 0, ForkPeriod: 1, Target: adversary.TargetCorrect, Fanout: 1},
			New:       chainTemplate(AttackTieBreak),
		})
	Attacks.Register(string(AttackEquivocate),
		"alternate forking and extending the two deepest tips (chain only)",
		AttackDef{
			Protocols: []Protocol{Chain},
			Schema:    chainSchema,
			Preset:    adversary.Params{ForkCount: 1, ForkPeriod: 2, ForkLonely: true, Target: adversary.TargetFirst, Fanout: 1},
			New:       chainTemplate(AttackEquivocate),
		})
	Attacks.Register(string(AttackPrivateChain),
		"Lemma 5.5: continuously extend the pivot with single-parent private chains (dag only)",
		AttackDef{
			Protocols: []Protocol{Dag},
			Schema:    dagSchema,
			Preset:    adversary.Params{Root: adversary.RootPivot, Segment: 1, Fanout: 1},
			New:       dagTemplate(AttackPrivateChain),
		})
	Attacks.Register(string(AttackLastMinute),
		"Lemma 5.5's literal strategy: stay silent, burst within `margin` of the decision (dag only)",
		AttackDef{
			Protocols: []Protocol{Dag},
			Schema:    dagSchema,
			Preset:    adversary.Params{Root: adversary.RootPivot, Segment: 1, StartWithin: 6, Fanout: 1},
			New:       dagTemplate(AttackLastMinute),
		})
	Attacks.Register(string(AttackPrivateFork),
		"genesis-rooted private chain that never references honest blocks — the GHOST-motivating attack (dag only)",
		AttackDef{
			Protocols: []Protocol{Dag},
			Schema:    dagSchema,
			Preset:    adversary.Params{Root: adversary.RootGenesis, Segment: 0, Fanout: 1},
			New:       dagTemplate(AttackPrivateFork),
		})
	Attacks.Register(string(AttackDelayedChain),
		"Lemma 3.1: reveal a hidden signature chain one round too late (sync only)",
		AttackDef{
			NewSync: func(*Spec) (func() syncba.Adversary, error) {
				return func() syncba.Adversary { return &syncba.DelayedChain{} }, nil
			},
		})
	Attacks.Register(string(AttackLoudFlip),
		"vote against the unanimous correct input on schedule (sync only)",
		AttackDef{
			NewSync: func(*Spec) (func() syncba.Adversary, error) {
				return func() syncba.Adversary { return &syncba.LoudFlip{} }, nil
			},
		})

	AccessModels.Register(string(AccessPoisson),
		"§1.1's Poisson token authority (rate λ per node per Δ; the PoW reading)",
		func(cfg *agreement.RandomizedConfig) { cfg.RoundRobinAccess = false })
	AccessModels.Register(string(AccessRoundRobin),
		"burst-free deterministic round-robin authority at the same aggregate rate (E17's ablation)",
		func(cfg *agreement.RandomizedConfig) { cfg.RoundRobinAccess = true })
}

// SyncAttacks enumerates the attacks applicable to the sync protocol, in
// registration order.
func SyncAttacks() []string {
	var out []string
	for _, name := range Attacks.order {
		if Attacks.m[name].NewSync != nil {
			out = append(out, name)
		}
	}
	return out
}

// AttacksFor enumerates the attacks applicable to one randomized protocol,
// in registration order.
func AttacksFor(p Protocol) []string {
	var out []string
	for _, name := range Attacks.order {
		d := Attacks.m[name]
		if d.New != nil && d.appliesTo(p) {
			out = append(out, name)
		}
	}
	return out
}

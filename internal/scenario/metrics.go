package scenario

import (
	"fmt"
	"math"

	"repro/internal/appendmem"
	"repro/internal/chain"
	"repro/internal/dag"
)

// MetricKind says how per-run metric values aggregate across trials.
type MetricKind int

const (
	// KindRate metrics return 0 or 1 per run; points report successes/trials.
	KindRate MetricKind = iota
	// KindMean metrics return a value per run; points report the mean over
	// the runs where the value is defined (NaN marks "undefined this run",
	// e.g. decide-time when nobody decided).
	KindMean
)

// MetricDef is one registered metric extractor. Bind resolves everything
// name-shaped once per sweep point (the spec's pivot for DAG order
// statistics, the decision threshold k, ...), so the returned extractor
// runs on the per-trial path with no lookups.
type MetricDef struct {
	Kind MetricKind
	Bind func(b *Bound) (func(*Result) float64, error)
}

// DefaultMetrics is the metric set used when a spec names none: the three
// agreement properties and their conjunction.
func DefaultMetrics() []string {
	return []string{"ok", "validity", "agreement", "termination"}
}

func boolMetric(pick func(*Result) bool) MetricDef {
	return MetricDef{Kind: KindRate, Bind: func(*Bound) (func(*Result) float64, error) {
		return func(r *Result) float64 {
			if pick(r) {
				return 1
			}
			return 0
		}, nil
	}}
}

// randomizedOnly wraps a bind so the metric rejects sync scenarios at
// bind time instead of reading fields the sync harness never fills.
func randomizedOnly(name string, bind func(b *Bound) (func(*Result) float64, error)) func(b *Bound) (func(*Result) float64, error) {
	return func(b *Bound) (func(*Result) float64, error) {
		if b.sync {
			return nil, fmt.Errorf("scenario: metric %q applies to randomized protocols only", name)
		}
		return bind(b)
	}
}

// analysisTieBreak is the tie-breaker the order metrics use to pick the
// canonical chain of a final view: the spec's rule when deterministic,
// first-tip when the spec uses (or defaults to) the randomized rule —
// post-hoc analysis has no protocol RNG to draw from.
func analysisTieBreak(s *Spec) chain.TieBreaker {
	if s.TieBreak == "" || s.TieBreak == TieRandom {
		return chain.FirstTieBreaker{}
	}
	def, _ := TieBreaks.Lookup(string(s.TieBreak))
	return def(s.N, s.T)
}

// orderedPrefix binds a chain/dag metric over the first k blocks of the
// run's canonical order, reducing each prefix with stat (maxByzRun or
// byzShare below).
func orderedPrefix(stat func(r *Result, ids []appendmem.MsgID) float64) func(b *Bound) (func(*Result) float64, error) {
	return func(b *Bound) (func(*Result) float64, error) {
		if b.spec.Window > 0 {
			// Order metrics rebuild the whole chain/dag from the final view;
			// a windowed run has retired that prefix.
			return nil, fmt.Errorf("scenario: order metrics need the full final view and cannot run with window > 0")
		}
		k := b.spec.K
		switch b.spec.Protocol {
		case Chain:
			tb := analysisTieBreak(&b.spec)
			return func(r *Result) float64 {
				tree := chain.Build(r.FinalView)
				tips := tree.LongestTips()
				if len(tips) == 0 {
					return math.NaN()
				}
				ids := tree.ChainTo(tb.Pick(tips, r.FinalView, nil))
				if len(ids) > k {
					ids = ids[:k]
				}
				return stat(r, ids)
			}, nil
		case Dag:
			pivot := b.spec.Pivot
			if pivot == "" {
				pivot = PivotGhost
			}
			longest := pivot == PivotLongest
			return func(r *Result) float64 {
				d := dag.Build(r.FinalView)
				anchor := d.GhostPivot()
				if longest {
					anchor = d.LongestPivot()
				}
				order := d.Linearize(anchor)
				if len(order) > k {
					order = order[:k]
				}
				return stat(r, order)
			}, nil
		default:
			return nil, fmt.Errorf("scenario: order metrics apply to chain/dag only, not %q", b.spec.Protocol)
		}
	}
}

func maxByzRun(r *Result, ids []appendmem.MsgID) float64 {
	maxRun, run := 0, 0
	for _, id := range ids {
		if r.Roster.IsByzantine(r.FinalView.Message(id).Author) {
			run++
			if run > maxRun {
				maxRun = run
			}
		} else {
			run = 0
		}
	}
	return float64(maxRun)
}

func byzShare(r *Result, ids []appendmem.MsgID) float64 {
	if len(ids) == 0 {
		return math.NaN()
	}
	byz := 0
	for _, id := range ids {
		if r.Roster.IsByzantine(r.FinalView.Message(id).Author) {
			byz++
		}
	}
	return float64(byz) / float64(len(ids))
}

func init() {
	Metrics.Register("ok",
		"run satisfied agreement, validity and termination",
		boolMetric(func(r *Result) bool { return r.Verdict.OK() }))
	Metrics.Register("validity",
		"decisions matched a unanimous correct input (Definition 2.1)",
		boolMetric(func(r *Result) bool { return r.Verdict.Validity }))
	Metrics.Register("agreement",
		"all decided correct nodes decided the same value",
		boolMetric(func(r *Result) bool { return r.Verdict.Agreement }))
	Metrics.Register("termination",
		"every correct node decided",
		boolMetric(func(r *Result) bool { return r.Verdict.Termination }))
	Metrics.Register("duration",
		"mean simulated time until the run ended (in Δ)",
		MetricDef{Kind: KindMean, Bind: func(*Bound) (func(*Result) float64, error) {
			return func(r *Result) float64 { return float64(r.Duration) }, nil
		}})
	Metrics.Register("appends",
		"mean appended blocks in the final view",
		MetricDef{Kind: KindMean, Bind: func(*Bound) (func(*Result) float64, error) {
			return func(r *Result) float64 { return float64(r.TotalAppends) }, nil
		}})
	Metrics.Register("byz-appends",
		"mean Byzantine-authored appends (randomized protocols)",
		MetricDef{Kind: KindMean, Bind: randomizedOnly("byz-appends",
			func(*Bound) (func(*Result) float64, error) {
				return func(r *Result) float64 { return float64(r.ByzAppends) }, nil
			})})
	Metrics.Register("byz-append-share",
		"mean Byzantine share of all appends (randomized protocols)",
		MetricDef{Kind: KindMean, Bind: randomizedOnly("byz-append-share",
			func(*Bound) (func(*Result) float64, error) {
				return func(r *Result) float64 {
					if r.TotalAppends == 0 {
						return math.NaN()
					}
					return float64(r.ByzAppends) / float64(r.TotalAppends)
				}, nil
			})})
	Metrics.Register("decide-time",
		"mean decision time of the decided correct nodes (in Δ; randomized protocols)",
		MetricDef{Kind: KindMean, Bind: randomizedOnly("decide-time",
			func(*Bound) (func(*Result) float64, error) {
				return func(r *Result) float64 {
					sum, cnt := 0.0, 0
					for _, id := range r.Roster.Correct() {
						if r.Decided[id] {
							sum += float64(r.DecideTime[id])
							cnt++
						}
					}
					if cnt == 0 {
						return math.NaN()
					}
					return sum / float64(cnt)
				}, nil
			})})
	Metrics.Register("mem-high-water",
		"mean peak live-message count (= appends unbounded; bounded near `window` in windowed mode)",
		MetricDef{Kind: KindMean, Bind: randomizedOnly("mem-high-water",
			func(*Bound) (func(*Result) float64, error) {
				return func(r *Result) float64 { return float64(r.MemHighWater) }, nil
			})})
	Metrics.Register("vis-lag",
		"mean append-propagation lag over the topology (in Δ; 0 on the complete/oracle path)",
		MetricDef{Kind: KindMean, Bind: randomizedOnly("vis-lag",
			func(*Bound) (func(*Result) float64, error) {
				return func(r *Result) float64 { return r.VisMeanLag }, nil
			})})
	Metrics.Register("max-byz-run",
		"mean longest Byzantine run in the first k ordered blocks (Lemma 5.5; chain/dag)",
		MetricDef{Kind: KindMean, Bind: orderedPrefix(maxByzRun)})
	Metrics.Register("byz-prefix-share",
		"mean Byzantine share of the first k ordered blocks (chain/dag)",
		MetricDef{Kind: KindMean, Bind: orderedPrefix(byzShare)})
}

package scenario

import (
	"reflect"
	"strings"
	"testing"

	"repro/internal/adversary"
	"repro/internal/agreement"
	"repro/internal/agreement/chainba"
	"repro/internal/agreement/dagba"
	"repro/internal/agreement/syncba"
	"repro/internal/chain"
	"repro/internal/node"
)

func TestBindErrors(t *testing.T) {
	cases := []struct {
		name string
		spec Spec
		want string // substring of the error
	}{
		{"unknown protocol", Spec{Protocol: "blockchain", N: 4}, "unknown protocol"},
		{"n zero", Spec{Protocol: Chain, N: 0}, "invalid roster"},
		{"t >= n", Spec{Protocol: Chain, N: 4, T: 4}, "invalid roster"},
		{"crashes overflow", Spec{Protocol: Chain, N: 4, T: 2, Crashes: 3}, "crashes"},
		{"bad inputs", Spec{Protocol: Chain, N: 4, Lambda: 1, K: 5, Inputs: "bogus"}, "input spec"},
		{"split out of range", Spec{Protocol: Chain, N: 4, Lambda: 1, K: 5, Inputs: "split:9"}, "input spec"},
		{"unknown attack", Spec{Protocol: Chain, N: 4, Lambda: 1, K: 5, Attack: "ddos"}, "unknown attack"},
		{"randomized attack on sync", Spec{Protocol: Sync, N: 4, T: 1, Attack: AttackFlip}, "not valid for protocol sync"},
		{"sync attack on chain", Spec{Protocol: Chain, N: 4, T: 1, Lambda: 1, K: 5, Attack: AttackDelayedChain}, "not valid for protocol"},
		{"chain attack on dag", Spec{Protocol: Dag, N: 4, T: 1, Lambda: 1, K: 5, Attack: AttackTieBreak}, "not valid for protocol"},
		{"lambda missing", Spec{Protocol: Chain, N: 4, K: 5}, "lambda"},
		{"k missing", Spec{Protocol: Chain, N: 4, Lambda: 1}, "k > 0"},
		{"rates length", Spec{Protocol: Chain, N: 4, Rates: []float64{1, 1}, K: 5}, "rates"},
		{"rate non-positive", Spec{Protocol: Chain, N: 4, Rates: []float64{1, 1, 0, 1}, K: 5}, "non-positive"},
		{"round-robin on sync", Spec{Protocol: Sync, N: 4, T: 1, Access: AccessRoundRobin}, "randomized protocols only"},
		{"unknown access", Spec{Protocol: Chain, N: 4, Lambda: 1, K: 5, Access: "lottery"}, "unknown access"},
		{"confirm on timestamp", Spec{Protocol: Timestamp, N: 4, Lambda: 1, K: 5, Confirm: 3}, "confirm"},
		{"unknown tiebreak", Spec{Protocol: Chain, N: 4, Lambda: 1, K: 5, TieBreak: "coin"}, "unknown tie-break"},
		{"unknown pivot", Spec{Protocol: Dag, N: 4, Lambda: 1, K: 5, Pivot: "heaviest"}, "unknown pivot"},
	}
	for _, tc := range cases {
		_, err := Bind(tc.spec)
		if err == nil {
			t.Errorf("%s: Bind accepted %+v", tc.name, tc.spec)
			continue
		}
		if !strings.Contains(err.Error(), tc.want) {
			t.Errorf("%s: error %q does not mention %q", tc.name, err, tc.want)
		}
	}
}

func TestBindDefaults(t *testing.T) {
	b := MustBind(Spec{Protocol: Chain, N: 4, T: 1, Lambda: 1, K: 5})
	if b.IsSync() {
		t.Fatal("chain bound as sync")
	}
	// Default attack is silent; default inputs all-+1.
	if _, ok := b.NewAdversary().(agreement.Silent); !ok {
		t.Errorf("default adversary = %T, want agreement.Silent", b.NewAdversary())
	}
	if got := b.inputs(1); !reflect.DeepEqual(got, node.AllSame(4, +1)) {
		t.Errorf("default inputs = %v", got)
	}

	s := MustBind(Spec{Protocol: Sync, N: 4, T: 1})
	if !s.IsSync() {
		t.Fatal("sync bound as randomized")
	}
}

// TestDifferentialChain: binding a chain spec must reproduce, bit for
// bit, what the experiments' direct agreement.MustRun calls produce at
// the same seed — this is the equivalence the migration relies on.
func TestDifferentialChain(t *testing.T) {
	b := MustBind(Spec{
		Protocol: Chain, N: 6, T: 2, Lambda: 0.5, K: 11,
		Attack: AttackTieBreak,
	})
	for seed := uint64(1); seed <= 5; seed++ {
		got := b.Randomized(seed)
		want := agreement.MustRun(
			agreement.RandomizedConfig{N: 6, T: 2, Lambda: 0.5, K: 11, Seed: seed},
			chainba.Rule{TB: chain.RandomTieBreaker{}},
			&adversary.ChainTieBreaker{})
		assertSameRandomized(t, seed, got, want)
	}
}

// TestDifferentialDag: same equivalence for a DAG spec with non-default
// pivot, heterogeneous rates, crashes and random inputs.
func TestDifferentialDag(t *testing.T) {
	rates := []float64{1, 1, 1, 2, 2, 2}
	b := MustBind(Spec{
		Protocol: Dag, N: 6, T: 2, Rates: rates, K: 11,
		Pivot: PivotLongest, Attack: AttackPrivateChain,
		Crashes: 1, Inputs: "split:2",
	})
	for seed := uint64(1); seed <= 5; seed++ {
		got := b.Randomized(seed)
		want := agreement.MustRun(
			agreement.RandomizedConfig{
				N: 6, T: 2, Rates: rates, K: 11, Seed: seed,
				Crashes: 1, Inputs: node.SplitInputs(6, 2),
			},
			dagba.Rule{Pivot: dagba.Longest},
			&adversary.DagChainExtender{Pivot: dagba.Longest})
		assertSameRandomized(t, seed, got, want)
	}
}

// TestDifferentialSync: the sync harness path must match direct
// syncba.Run calls.
func TestDifferentialSync(t *testing.T) {
	b := MustBind(Spec{Protocol: Sync, N: 5, T: 2, Attack: AttackLoudFlip})
	for seed := uint64(1); seed <= 5; seed++ {
		got := b.Sync(seed)
		want, err := syncba.Run(
			syncba.Config{N: 5, T: 2, Seed: seed, Inputs: node.AllSame(5, +1)},
			&syncba.LoudFlip{})
		if err != nil {
			t.Fatalf("seed %d: direct run: %v", seed, err)
		}
		if got.Verdict != want.Verdict {
			t.Errorf("seed %d: verdict %+v != %+v", seed, got.Verdict, want.Verdict)
		}
		if !reflect.DeepEqual(got.Outcome, want.Outcome) {
			t.Errorf("seed %d: outcome differs", seed)
		}
		if got.Duration != want.Duration {
			t.Errorf("seed %d: duration %v != %v", seed, got.Duration, want.Duration)
		}
	}
}

func assertSameRandomized(t *testing.T, seed uint64, got, want *agreement.Result) {
	t.Helper()
	if got.Verdict != want.Verdict {
		t.Errorf("seed %d: verdict %+v != %+v", seed, got.Verdict, want.Verdict)
	}
	if !reflect.DeepEqual(got.Outcome, want.Outcome) {
		t.Errorf("seed %d: outcome differs", seed)
	}
	if got.TotalAppends != want.TotalAppends || got.ByzAppends != want.ByzAppends || got.Grants != want.Grants {
		t.Errorf("seed %d: appends %d/%d/%d != %d/%d/%d", seed,
			got.TotalAppends, got.ByzAppends, got.Grants,
			want.TotalAppends, want.ByzAppends, want.Grants)
	}
	if got.Duration != want.Duration {
		t.Errorf("seed %d: duration %v != %v", seed, got.Duration, want.Duration)
	}
	if !reflect.DeepEqual(got.DecideTime, want.DecideTime) {
		t.Errorf("seed %d: decide times differ", seed)
	}
}

// TestUnifiedRun: Run must agree with the harness-specific entry points
// and populate the uniform Result.
func TestUnifiedRun(t *testing.T) {
	b := MustBind(Spec{Protocol: Dag, N: 5, T: 1, Lambda: 1, K: 7})
	r, err := b.Run(3)
	if err != nil {
		t.Fatalf("Run: %v", err)
	}
	direct := b.Randomized(3)
	if r.Verdict != direct.Verdict || r.TotalAppends != direct.TotalAppends || r.Duration != direct.Duration {
		t.Fatal("Run disagrees with Randomized at the same seed")
	}
	if !r.HasView || r.FinalView.Size() == 0 {
		t.Fatal("Run did not carry the final view")
	}

	s := MustBind(Spec{Protocol: Sync, N: 4, T: 1})
	rs, err := s.Run(3)
	if err != nil {
		t.Fatalf("sync Run: %v", err)
	}
	if !rs.HasView || rs.TotalAppends != rs.FinalView.Size() {
		t.Fatal("sync Run result inconsistent")
	}
}

func TestRunTrials(t *testing.T) {
	sum, err := RunTrials(Spec{Protocol: Chain, N: 5, T: 1, Lambda: 1, K: 7, Seed: 1}, 4)
	if err != nil {
		t.Fatalf("RunTrials: %v", err)
	}
	if sum.Trials != 4 {
		t.Fatalf("trials = %d", sum.Trials)
	}
	if sum.OK > sum.Trials || sum.OK > sum.Agreement || sum.OK > sum.Validity || sum.OK > sum.Termination {
		t.Fatalf("inconsistent summary %+v", sum)
	}
	if !strings.Contains(sum.String(), "ok ") {
		t.Fatalf("String() = %q", sum.String())
	}
	if sum.Rate() < 0 || sum.Rate() > 1 {
		t.Fatalf("Rate() = %v", sum.Rate())
	}

	if _, err := RunTrials(Spec{Protocol: "nope", N: 1}, 1); err == nil {
		t.Fatal("RunTrials accepted a bad spec")
	}
}

func TestRandomInputsDeterministicPerSeed(t *testing.T) {
	b := MustBind(Spec{Protocol: Chain, N: 8, T: 1, Lambda: 1, K: 7, Inputs: "random"})
	a1, a2 := b.inputs(9), b.inputs(9)
	if !reflect.DeepEqual(a1, a2) {
		t.Fatal("random inputs not deterministic per seed")
	}
	if reflect.DeepEqual(b.inputs(1), b.inputs(2)) {
		t.Fatal("random inputs identical across seeds (suspicious)")
	}
}

// TestBindBoundedValidation: the windowed/checkpoint knobs must fail at
// bind time with errors naming the conflict, never trials in.
func TestBindBoundedValidation(t *testing.T) {
	ok := Spec{Protocol: Dag, N: 6, T: 2, Lambda: 1, K: 15, Window: 64, Attack: AttackFlip}
	if _, err := Bind(ok); err != nil {
		t.Fatalf("valid windowed spec rejected: %v", err)
	}
	cases := []struct {
		name string
		mut  func(*Spec)
		want string
	}{
		{"negative", func(s *Spec) { s.Window = -1 }, "window must be >= 0"},
		{"below lookback", func(s *Spec) { s.Window = 16; s.Confirm = 4 }, "k+confirm = 15+4 = 19"},
		{"wrong protocol", func(s *Spec) { s.Protocol = Timestamp }, "chain/dag"},
		{"attack", func(s *Spec) { s.Attack = AttackPrivateChain }, "silent/flip"},
		{"topology", func(s *Spec) { s.Topology = TopoRing }, "complete topology"},
		{"stall", func(s *Spec) { s.StallAtSize = 10 }, "stall_at"},
		{"async", func(s *Spec) { s.AsyncDelayMax = 2 }, "async_delay_max"},
		{"both modes", func(s *Spec) { s.Checkpoint = true }, "mutually exclusive"},
		{"checkpoint attack", func(s *Spec) { s.Window = 0; s.Checkpoint = true; s.Attack = AttackLastMinute }, "adversary state is not checkpointed"},
	}
	for _, tc := range cases {
		s := ok
		tc.mut(&s)
		_, err := Bind(s)
		if err == nil || !strings.Contains(err.Error(), tc.want) {
			t.Errorf("%s: want error containing %q, got %v", tc.name, tc.want, err)
		}
	}
	// The window-below-lookback error must name both sides of the conflict.
	s := ok
	s.Window = 16
	s.Confirm = 4
	_, err := Bind(s)
	if err == nil || !strings.Contains(err.Error(), "window 16") {
		t.Errorf("lookback error does not name the window: %v", err)
	}
}

// TestOrderMetricsRejectWindow: metrics that rebuild the full chain/dag
// from the final view cannot run over a windowed (prefix-retired) memory.
func TestOrderMetricsRejectWindow(t *testing.T) {
	b, err := Bind(Spec{Protocol: Dag, N: 6, T: 2, Lambda: 1, K: 15, Window: 64, Attack: AttackFlip})
	if err != nil {
		t.Fatalf("Bind: %v", err)
	}
	for _, name := range []string{"max-byz-run", "byz-prefix-share"} {
		def, ok := Metrics.Lookup(name)
		if !ok {
			t.Fatalf("metric %q not registered", name)
		}
		if _, err := def.Bind(b); err == nil || !strings.Contains(err.Error(), "window") {
			t.Errorf("%s: want window rejection, got %v", name, err)
		}
	}
}

package scenario

import (
	"strings"
	"testing"
)

// TestRegistryCompleteness: every typed constant declared in this package
// must be resolvable from its registry, so the -list output, the Spec
// schema and the constants cannot drift apart.
func TestRegistryCompleteness(t *testing.T) {
	for _, p := range []Protocol{Sync, Timestamp, Chain, Dag} {
		if _, ok := Protocols.Lookup(string(p)); !ok {
			t.Errorf("protocol constant %q not registered", p)
		}
	}
	for _, tb := range []TieBreak{TieFirst, TieRandom, TieAdversarial} {
		if _, ok := TieBreaks.Lookup(string(tb)); !ok {
			t.Errorf("tiebreak constant %q not registered", tb)
		}
	}
	for _, p := range []Pivot{PivotGhost, PivotLongest} {
		if _, ok := Pivots.Lookup(string(p)); !ok {
			t.Errorf("pivot constant %q not registered", p)
		}
	}
	for _, a := range []Attack{
		AttackSilent, AttackFlip, AttackFork, AttackTieBreak,
		AttackPrivateChain, AttackLastMinute, AttackPrivateFork,
		AttackEquivocate, AttackDelayedChain, AttackLoudFlip, AttackRandom,
	} {
		if _, ok := Attacks.Lookup(string(a)); !ok {
			t.Errorf("attack constant %q not registered", a)
		}
	}
	for _, a := range []Access{AccessPoisson, AccessRoundRobin} {
		if _, ok := AccessModels.Lookup(string(a)); !ok {
			t.Errorf("access constant %q not registered", a)
		}
	}
	for _, m := range DefaultMetrics() {
		if _, ok := Metrics.Lookup(m); !ok {
			t.Errorf("default metric %q not registered", m)
		}
	}
}

// TestRegistryDocs: every registered name must carry a help line (the
// -list output would otherwise print blanks).
func TestRegistryDocs(t *testing.T) {
	check := func(kind string, names []string, doc func(string) string) {
		for _, n := range names {
			if doc(n) == "" {
				t.Errorf("%s %q has no doc line", kind, n)
			}
		}
	}
	check("protocol", Protocols.Names(), Protocols.Doc)
	check("tiebreak", TieBreaks.Names(), TieBreaks.Doc)
	check("pivot", Pivots.Names(), Pivots.Doc)
	check("attack", Attacks.Names(), Attacks.Doc)
	check("access", AccessModels.Names(), AccessModels.Doc)
	check("metric", Metrics.Names(), Metrics.Doc)
}

// TestEveryAttackHasConstructor: an attack with neither New nor NewSync
// could never bind.
func TestEveryAttackHasConstructor(t *testing.T) {
	for _, name := range Attacks.Names() {
		d, _ := Attacks.Lookup(name)
		if d.New == nil && d.NewSync == nil {
			t.Errorf("attack %q has no constructor", name)
		}
	}
}

// TestAttackScoping pins the applicability matrix: protocol-specific
// attacks must not leak to other protocols.
func TestAttackScoping(t *testing.T) {
	has := func(list []string, name Attack) bool {
		for _, x := range list {
			if x == string(name) {
				return true
			}
		}
		return false
	}
	chainAtt := AttacksFor(Chain)
	dagAtt := AttacksFor(Dag)
	tsAtt := AttacksFor(Timestamp)
	syncAtt := SyncAttacks()

	if !has(chainAtt, AttackTieBreak) || has(dagAtt, AttackTieBreak) {
		t.Error("tiebreak must be chain-only")
	}
	if !has(dagAtt, AttackPrivateChain) || has(chainAtt, AttackPrivateChain) {
		t.Error("private-chain must be dag-only")
	}
	if !has(syncAtt, AttackDelayedChain) || has(chainAtt, AttackDelayedChain) {
		t.Error("delayed-chain must be sync-only")
	}
	for _, list := range [][]string{chainAtt, dagAtt, tsAtt, syncAtt} {
		if !has(list, AttackSilent) {
			t.Error("silent must apply everywhere")
		}
	}
}

func TestRegistryDuplicatePanics(t *testing.T) {
	r := newRegistry[int]()
	r.Register("x", "doc", 1)
	defer func() {
		if recover() == nil {
			t.Fatal("duplicate registration did not panic")
		}
	}()
	r.Register("x", "doc", 2)
}

func TestRegistryEnumeration(t *testing.T) {
	r := newRegistry[int]()
	r.Register("b", "B", 1)
	r.Register("a", "A", 2)
	names := r.Names()
	if len(names) != 2 || names[0] != "b" || names[1] != "a" {
		t.Fatalf("Names() = %v, want registration order [b a]", names)
	}
	if r.Help() != "b | a" {
		t.Fatalf("Help() = %q", r.Help())
	}
	names[0] = "mutated"
	if r.Names()[0] != "b" {
		t.Fatal("Names() does not return a fresh slice")
	}
	if _, ok := r.Lookup("missing"); ok {
		t.Fatal("Lookup found a missing name")
	}
}

// TestHelpMentionsEveryName: the Help string is what error messages and
// flag usage print; it must contain each registered name.
func TestHelpMentionsEveryName(t *testing.T) {
	h := Attacks.Help()
	for _, n := range Attacks.Names() {
		if !strings.Contains(h, n) {
			t.Errorf("Attacks.Help() misses %q", n)
		}
	}
}

package scenario

import (
	"fmt"

	"repro/internal/agreement"
	"repro/internal/appendmem"
	"repro/internal/chain"
	"repro/internal/dag"
	"repro/internal/node"
)

// This file binds the agreement invariant layer to a scenario: the
// protocol's canonical order function, the spec's decision threshold and
// the resilience bound, packaged so every searched execution (and the
// "violations" metric) checks decided-prefix agreement, conflicting
// decisions and the validity fraction bound.

// DefaultMaxByzFraction bounds the Byzantine share of a decided k-prefix:
// the paper's resilience arguments need a correct majority.
const DefaultMaxByzFraction = 0.5

// OrderFunc returns the protocol's canonical linearization over an
// arbitrary view — the longest-chain walk under the analysis tie-break,
// or the pivot linearization. Chain/dag randomized protocols only.
func (b *Bound) OrderFunc() (func(appendmem.View) []appendmem.MsgID, error) {
	switch b.spec.Protocol {
	case Chain:
		tb := analysisTieBreak(&b.spec)
		return func(v appendmem.View) []appendmem.MsgID {
			tree := chain.Build(v)
			tips := tree.LongestTips()
			if len(tips) == 0 {
				return nil
			}
			return tree.ChainTo(tb.Pick(tips, v, nil))
		}, nil
	case Dag:
		longest := b.spec.Pivot == PivotLongest
		return func(v appendmem.View) []appendmem.MsgID {
			d := dag.Build(v)
			anchor := d.GhostPivot()
			if longest {
				anchor = d.LongestPivot()
			}
			return d.Linearize(anchor)
		}, nil
	default:
		return nil, fmt.Errorf("scenario: canonical order applies to chain/dag only, not %q", b.spec.Protocol)
	}
}

// Invariants assembles the agreement invariant checker for the bound
// scenario. Chain/dag randomized scenarios get the full set (the order
// checks need the whole memory, so windowed mode is rejected); other
// randomized protocols get the conflicting-decisions check alone.
func (b *Bound) Invariants() (agreement.Invariants, error) {
	if b.sync {
		return agreement.Invariants{}, fmt.Errorf("scenario: invariants apply to randomized protocols only")
	}
	iv := agreement.Invariants{K: b.spec.K, MaxByzFraction: DefaultMaxByzFraction}
	if b.spec.Protocol != Chain && b.spec.Protocol != Dag {
		return iv, nil
	}
	if b.spec.Window > 0 {
		return agreement.Invariants{}, fmt.Errorf("scenario: invariant checks need the full memory and cannot run with window > 0")
	}
	order, err := b.OrderFunc()
	if err != nil {
		return agreement.Invariants{}, err
	}
	iv.Order = order
	return iv, nil
}

// CheckInvariants runs a bound invariant set on this result.
func (r *Result) CheckInvariants(iv agreement.Invariants) agreement.Violations {
	return iv.CheckRun(r.Roster, &node.Outcome{Decided: r.Decided, Decision: r.Decision}, r.Mem, r.DecideViewSize)
}

func init() {
	Metrics.Register("violations",
		"mean safety-invariant violations per run (conflicting decisions, decided prefixes, validity bound)",
		MetricDef{Kind: KindMean, Bind: randomizedOnly("violations",
			func(b *Bound) (func(*Result) float64, error) {
				iv, err := b.Invariants()
				if err != nil {
					return nil, err
				}
				return func(r *Result) float64 {
					return float64(len(r.CheckInvariants(iv)))
				}, nil
			})})
}

// Package appendmem implements the append memory model of Melnyk and
// Wattenhofer (SPAA 2020, Section 1.1): n unbounded single-writer registers
// R_1..R_n supporting R_i.read() and R_i.append(msg), equivalently viewed as
// one register M that every node appends to and reads in full.
//
// The memory enforces exactly the powers the paper grants and no more:
//
//   - Single-writer order. Register R_i totally orders the messages of node
//     v_i; this is enforced structurally through the Writer capability.
//   - No overwrites. Appended messages are immutable and never removed.
//   - Instant visibility. An appended message is part of every later read.
//   - No cross-register ordering. The memory "withdraws the power of
//     ordering messages": a View iterates messages in (author, sequence)
//     order, which conveys no information about real arrival interleaving.
//     The arrival order exists internally (it defines what a read at time τ
//     returns) but is only exposed through the Timestamps accessor, which
//     models the central timestamp authority of Section 5.1 and must only
//     be used by the timestamp baseline protocol.
//
// All ordering semantics protocols care about (chain parents, DAG parents,
// round labels) travel inside Message payloads, exactly as in the paper
// where a message "contains some value from this node and a reference to a
// previous state of the memory".
//
// # Storage
//
// Messages live by value in chunked slabs: fixed-capacity []Message chunks
// that are appended to but never reallocated, so a *Message obtained from
// any accessor stays valid (and stable) for the life of the Memory. Parent
// references are packed into a shared per-Memory arena with the same
// stability guarantee. The steady state of an append — no chunk or arena
// boundary crossed — performs zero heap allocations; boundary crossings
// amortize to one allocation per chunkSize messages.
//
// # Windowed mode
//
// Long-horizon runs only ever reach a bounded suffix of the memory, so the
// harness can retire the unreachable prefix: Retire(w) advances a watermark
// and hands fully-retired chunks back to the Memory's slab free list, where
// the next append reuses them. NewBounded selects a fixed chunk geometry so
// reclamation granularity stays proportional to the live window instead of
// the doubling chunks' half-of-history tail. Views, Each and Diff remain
// valid over the live window [watermark, size); any read below the
// watermark panics — retirement is driven by reachability proofs in the
// substrate indexes, so such a read is a protocol bug, never a modelled
// fault. LiveHighWater reports the peak live-message count, the memory
// high-water stat of windowed runs.
//
// A Memory is not safe for concurrent use; the deterministic simulator
// drives each run from a single goroutine, and parallel trials use disjoint
// Memory instances.
package appendmem

import (
	"errors"
	"fmt"
	"math/bits"
)

// NodeID identifies a node (register owner) in [0, n).
type NodeID int

// MsgID is the internal identity of an appended message. IDs are assigned
// in arrival order but protocols must not use them to infer cross-register
// ordering; they are opaque handles for parent references.
type MsgID int

// None is the null MsgID, used e.g. as the chain-genesis parent marker.
const None MsgID = -1

// Message is one appended command. Fields are set at append time and
// immutable afterwards.
type Message struct {
	ID      MsgID
	Author  NodeID
	Seq     int     // position within the author's register R_Author
	Value   int64   // protocol value (input bit, ±1 vote, ...)
	Round   int     // protocol round label; 0 when unused
	Parents []MsgID // references to previous appends (the "previous state")
}

// Errors returned by Append.
var (
	ErrCrashed       = errors.New("appendmem: writer has crashed")
	ErrUnknownParent = errors.New("appendmem: parent reference not in memory")
)

// Slab geometry. Chunk k holds baseChunk<<k messages — capacities double,
// so a small run (one protocol trial) allocates one small chunk while a
// large memory amortizes to O(log n) chunk allocations, like a growing
// slice but without copying. The arena packs parent references in blocks
// that also double, from arenaBase up to arenaMax. Chunks and arena
// blocks are append-only and never grown past their fixed capacity,
// which is what keeps interior pointers stable.
const (
	baseShift = 4 // first chunk holds 16 messages
	baseChunk = 1 << baseShift
	arenaBase = 64
	arenaMax  = 16384
)

// chunkOf maps a message id to its (chunk index, offset): chunk k spans
// ids [baseChunk·(2^k−1), baseChunk·(2^(k+1)−1)).
func chunkOf(id MsgID) (int, int) {
	k := bits.Len64(uint64(id)>>baseShift+1) - 1
	return k, int(id) - ((1<<k)-1)<<baseShift
}

// Memory is the shared append memory for n nodes.
type Memory struct {
	n       int
	size    int         // total messages appended; the next MsgID
	chunks  [][]Message // arrival order; retired chunks are nil
	regs    [][]MsgID   // per-author registers, live suffix only
	writers []Writer
	arena   []MsgID // current parent-reference arena block

	// Windowed-mode state. fixedShift selects fixed 1<<fixedShift chunks
	// (0 keeps the default doubling geometry); watermark is the first live
	// id; regOff counts each author's retired messages; free is the slab
	// pool of retired chunks awaiting reuse.
	fixedShift int
	watermark  int
	regOff     []int
	liveHW     int
	free       [][]Message
}

// New creates an append memory for n nodes. It panics when n <= 0.
func New(n int) *Memory {
	if n <= 0 {
		panic("appendmem: New with non-positive n")
	}
	m := &Memory{n: n, regs: make([][]MsgID, n), writers: make([]Writer, n)}
	for i := range m.writers {
		m.writers[i] = Writer{mem: m, owner: NodeID(i)}
	}
	return m
}

// NewBounded creates an append memory whose chunks hold a fixed chunkSize
// messages (rounded up to a power of two, at least baseChunk) instead of
// doubling. Fixed geometry is what makes Retire effective: a doubling
// memory's newest chunk spans half its history and so can never be
// reclaimed while the run is live. chunkSize should be a small fraction
// of the intended live window.
func NewBounded(n, chunkSize int) *Memory {
	m := New(n)
	if chunkSize < baseChunk {
		chunkSize = baseChunk
	}
	m.fixedShift = bits.Len64(uint64(chunkSize - 1))
	return m
}

// NumNodes returns n.
func (m *Memory) NumNodes() int { return m.n }

// Len returns the total number of messages appended so far.
func (m *Memory) Len() int { return m.size }

// Watermark returns the first live id: messages below it have been retired
// and reading them panics. 0 until the first Retire.
func (m *Memory) Watermark() int { return m.watermark }

// Live returns the number of live (unretired) messages.
func (m *Memory) Live() int { return m.size - m.watermark }

// LiveHighWater returns the peak live-message count over the run so far —
// the memory high-water stat. Without Retire it equals Len.
func (m *Memory) LiveHighWater() int {
	if m.size-m.watermark > m.liveHW {
		return m.size - m.watermark
	}
	return m.liveHW
}

// chunkIndex maps a message id to its (chunk index, offset) under the
// memory's geometry.
func (m *Memory) chunkIndex(id MsgID) (int, int) {
	if m.fixedShift > 0 {
		return int(id) >> m.fixedShift, int(id) & (1<<m.fixedShift - 1)
	}
	return chunkOf(id)
}

// msg returns the message with a valid id. Callers check the range.
func (m *Memory) msg(id MsgID) *Message {
	ci, off := m.chunkIndex(id)
	return &m.chunks[ci][off]
}

// Writer returns the append capability of node id. There is exactly one
// Writer per register; handing it to one node enforces the single-writer
// rule structurally. It panics for an out-of-range id.
func (m *Memory) Writer(id NodeID) *Writer {
	if id < 0 || int(id) >= m.n {
		panic(fmt.Sprintf("appendmem: Writer(%d) out of range [0,%d)", id, m.n))
	}
	return &m.writers[id]
}

// Message returns the message with the given id, or nil when the id is
// invalid or None. It panics when the id has been retired below the
// watermark: windowed retirement only drops ids the protocol proved
// unreachable, so such a read is a bug, not a miss.
func (m *Memory) Message(id MsgID) *Message {
	if id < 0 || int(id) >= m.size {
		return nil
	}
	if int(id) < m.watermark {
		panic(fmt.Sprintf("appendmem: read of id %d below watermark %d", id, m.watermark))
	}
	return m.msg(id)
}

// Read returns the current full view of the memory, M.read() in the paper.
// The view is an immutable snapshot: later appends do not affect it.
func (m *Memory) Read() View { return View{mem: m, size: m.size} }

// ViewAt returns the view consisting of the first size appended messages.
// It panics when size is negative or exceeds Len. ViewAt(0) is the empty
// initial memory state M(0).
func (m *Memory) ViewAt(size int) View {
	if size < 0 || size > m.size {
		panic(fmt.Sprintf("appendmem: ViewAt(%d) out of range [0,%d]", size, m.size))
	}
	return View{mem: m, size: size}
}

// Register returns the ids of node id's live messages in append order —
// the contents of register R_id, minus any retired prefix. The returned
// slice is a copy.
func (m *Memory) Register(id NodeID) []MsgID {
	if id < 0 || int(id) >= m.n {
		panic(fmt.Sprintf("appendmem: Register(%d) out of range [0,%d)", id, m.n))
	}
	return append([]MsgID(nil), m.regs[id]...)
}

// RegisterLen returns the total number of messages node id has appended,
// including any retired below the watermark — register lengths survive
// retirement even though the retired contents do not.
func (m *Memory) RegisterLen(id NodeID) int {
	if id < 0 || int(id) >= m.n {
		panic(fmt.Sprintf("appendmem: RegisterLen(%d) out of range [0,%d)", id, m.n))
	}
	n := len(m.regs[id])
	if m.regOff != nil {
		n += m.regOff[id]
	}
	return n
}

// Timestamps exposes the global arrival order of all messages. This models
// the central authority of Section 5.1 that stamps every append; only the
// timestamp baseline protocol (Algorithm 4) may use it. The returned slice
// is a copy in arrival order. It panics on a windowed memory that has
// retired messages: the timestamp authority needs the full history.
func (m *Memory) Timestamps() []MsgID {
	if m.watermark > 0 {
		panic("appendmem: Timestamps below watermark")
	}
	ids := make([]MsgID, m.size)
	for i := range ids {
		ids[i] = MsgID(i)
	}
	return ids
}

// Retire advances the watermark to w, invalidating every message with id
// below it. Chunks that fall entirely below the watermark are zeroed (so
// the arena blocks their parent spans pin become collectable) and pushed
// onto the slab free list for reuse by later appends. Retirement is
// monotone; a watermark at or below the current one is a no-op. It panics
// when w exceeds Len. The caller is responsible for proving nothing will
// read below w — see agreement's windowed mode.
func (m *Memory) Retire(w int) {
	if w > m.size {
		panic(fmt.Sprintf("appendmem: Retire(%d) beyond Len %d", w, m.size))
	}
	if w <= m.watermark {
		return
	}
	if live := m.size - m.watermark; live > m.liveHW {
		m.liveHW = live
	}
	// Free chunks whose id range sits entirely below the new watermark:
	// everything strictly before the chunk containing w. That chunk itself
	// holds w (the first live id) and survives even when w is its first
	// slot — it is fully live, not fully retired.
	lastCi, _ := m.chunkIndex(MsgID(m.watermark))
	ci, _ := m.chunkIndex(MsgID(w))
	for ; lastCi < ci && lastCi < len(m.chunks); lastCi++ {
		c := m.chunks[lastCi]
		if c == nil {
			continue
		}
		for i := range c {
			c[i] = Message{}
		}
		if m.fixedShift > 0 {
			m.free = append(m.free, c[:0])
		}
		m.chunks[lastCi] = nil
	}
	// Drop the retired prefix of each register in place: shifting the live
	// suffix to the front keeps the backing array bounded by the peak live
	// register length instead of growing with the full history.
	if m.regOff == nil {
		m.regOff = make([]int, m.n)
	}
	for a := range m.regs {
		reg := m.regs[a]
		k := 0
		for k < len(reg) && int(reg[k]) < w {
			k++
		}
		if k > 0 {
			m.regOff[a] += k
			m.regs[a] = append(reg[:0], reg[k:]...)
		}
	}
	m.watermark = w
}

// Clone returns an independent deep copy of the memory: same messages,
// ids, registers and crash flags, disjoint storage. It replays the append
// sequence rather than copying slabs, so parent spans land in the clone's
// own arena. Checkpointing uses it to snapshot a trial prefix. It panics
// on a windowed memory that has retired messages — a retired prefix
// cannot be replayed.
func (m *Memory) Clone() *Memory {
	if m.watermark > 0 {
		panic("appendmem: Clone below watermark")
	}
	c := New(m.n)
	c.fixedShift = m.fixedShift
	for id := 0; id < m.size; id++ {
		msg := m.msg(MsgID(id))
		c.append(msg.Author, msg.Value, msg.Round, msg.Parents)
	}
	for i := range m.writers {
		c.writers[i].crashed = m.writers[i].crashed
	}
	return c
}

// append stores one message in the slabs and returns its stable address.
func (m *Memory) append(author NodeID, value int64, round int, parents []MsgID) *Message {
	ci, _ := m.chunkIndex(MsgID(m.size))
	if ci == len(m.chunks) {
		var c []Message
		if n := len(m.free); n > 0 {
			c, m.free[n-1] = m.free[n-1], nil
			m.free = m.free[:n-1]
		} else if m.fixedShift > 0 {
			c = make([]Message, 0, 1<<m.fixedShift)
		} else {
			c = make([]Message, 0, baseChunk<<ci)
		}
		m.chunks = append(m.chunks, c)
	}
	var ps []MsgID
	if len(parents) > 0 {
		if cap(m.arena)-len(m.arena) < len(parents) {
			c := cap(m.arena) * 2
			if c < arenaBase {
				c = arenaBase
			}
			if c > arenaMax {
				c = arenaMax
			}
			if len(parents) > c {
				c = len(parents)
			}
			m.arena = make([]MsgID, 0, c)
		}
		start := len(m.arena)
		m.arena = append(m.arena, parents...)
		ps = m.arena[start:len(m.arena):len(m.arena)]
	}
	seq := len(m.regs[author])
	if m.regOff != nil {
		seq += m.regOff[author]
	}
	chunk := append(m.chunks[ci], Message{
		ID:      MsgID(m.size),
		Author:  author,
		Seq:     seq,
		Value:   value,
		Round:   round,
		Parents: ps,
	})
	m.chunks[ci] = chunk
	msg := &chunk[len(chunk)-1]
	m.regs[author] = append(m.regs[author], msg.ID)
	m.size++
	return msg
}

// Writer is the exclusive append capability for one register.
type Writer struct {
	mem     *Memory
	owner   NodeID
	crashed bool
}

// Owner returns the register this writer appends to.
func (w *Writer) Owner() NodeID { return w.owner }

// Crashed reports whether Crash has been called.
func (w *Writer) Crashed() bool { return w.crashed }

// Crash permanently disables the writer, modelling a crash failure: the
// node stops executing the protocol at an arbitrary point.
func (w *Writer) Crash() { w.crashed = true }

// Append appends a message carrying value, round and parent references to
// the owner's register and returns it. Parents must already be in memory
// (a node may reference an obsolete state, but never a future one). The
// append is visible to all subsequent reads. The returned pointer is
// stable for the life of the Memory; parents are copied.
func (w *Writer) Append(value int64, round int, parents []MsgID) (*Message, error) {
	if w.crashed {
		return nil, ErrCrashed
	}
	for _, p := range parents {
		if p == None {
			continue
		}
		if w.mem.Message(p) == nil {
			return nil, fmt.Errorf("%w: %d", ErrUnknownParent, p)
		}
	}
	return w.mem.append(w.owner, value, round, parents), nil
}

// MustAppend is Append but panics on error; for protocol code where a
// failure indicates a bug rather than a modelled fault.
func (w *Writer) MustAppend(value int64, round int, parents []MsgID) *Message {
	msg, err := w.Append(value, round, parents)
	if err != nil {
		panic(err)
	}
	return msg
}

// View is an immutable snapshot of the memory: the set of messages
// appended before some point in (simulated) time. Views are totally
// ordered by inclusion, matching the paper's M(τ) ⊆ M(τ') for τ ≤ τ'.
type View struct {
	mem  *Memory
	size int
}

// Size returns the number of messages in the view.
func (v View) Size() int { return v.size }

// Empty reports whether the view is the initial empty memory state.
func (v View) Empty() bool { return v.size == 0 }

// Contains reports whether the message with the given id is in the view.
func (v View) Contains(id MsgID) bool { return id >= 0 && int(id) < v.size }

// Message returns the message with the given id when it is in the view,
// else nil. Like Memory.Message it panics for ids retired below the
// watermark.
func (v View) Message(id MsgID) *Message {
	if !v.Contains(id) {
		return nil
	}
	return v.mem.Message(id)
}

// Each calls yield for every message in the view in (author, seq) order —
// the same order Messages returns — stopping early when yield returns
// false. It allocates nothing: per-author registers are walked in author
// order, and within one author register order equals arrival order, so the
// visible prefix of each register is exactly the author's messages in the
// view.
func (v View) Each(yield func(*Message) bool) {
	if v.size < v.mem.watermark {
		panic(fmt.Sprintf("appendmem: Each over view of size %d below watermark %d", v.size, v.mem.watermark))
	}
	for _, reg := range v.mem.regs {
		for _, id := range reg {
			if !v.Contains(id) {
				break
			}
			if !yield(v.mem.msg(id)) {
				return
			}
		}
	}
}

// Messages returns all messages in the view sorted by (author, seq). This
// order is deterministic but deliberately independent of arrival
// interleaving across registers, so protocols cannot extract a total order
// the model forbids.
func (v View) Messages() []*Message {
	msgs := make([]*Message, 0, v.size)
	v.Each(func(m *Message) bool {
		msgs = append(msgs, m)
		return true
	})
	return msgs
}

// ByAuthor returns the live messages of one author inside the view, in
// the author's register order.
func (v View) ByAuthor(id NodeID) []*Message {
	if v.size < v.mem.watermark {
		panic(fmt.Sprintf("appendmem: ByAuthor over view of size %d below watermark %d", v.size, v.mem.watermark))
	}
	var msgs []*Message
	for _, mid := range v.mem.regs[id] {
		if !v.Contains(mid) {
			break // register order equals arrival order per author
		}
		msgs = append(msgs, v.mem.msg(mid))
	}
	return msgs
}

// ByRound returns all messages in the view labelled with the given round,
// sorted by (author, seq).
func (v View) ByRound(round int) []*Message {
	var msgs []*Message
	v.Each(func(m *Message) bool {
		if m.Round == round {
			msgs = append(msgs, m)
		}
		return true
	})
	return msgs
}

// ArrivalOrder returns the view's messages in the global arrival order.
// Like Memory.Timestamps, this models the absolute-timestamp authority of
// Section 5.1 and must only be used by the timestamp baseline protocol
// (Algorithm 4); chain and DAG protocols are forbidden this information.
func (v View) ArrivalOrder() []*Message {
	if v.mem.watermark > 0 {
		panic("appendmem: ArrivalOrder below watermark")
	}
	msgs := make([]*Message, v.size)
	for i := range msgs {
		msgs[i] = v.mem.msg(MsgID(i))
	}
	return msgs
}

// SubsetOf reports whether v is contained in other. Views over the same
// memory are totally ordered by inclusion.
func (v View) SubsetOf(other View) bool {
	return v.mem == other.mem && v.size <= other.size
}

// Diff returns the messages in v that are not in older, i.e. the appends
// between the two reads, in arrival order. It panics when the views come
// from different memories or older is larger.
func (v View) Diff(older View) []*Message {
	if v.mem != older.mem {
		panic("appendmem: Diff across memories")
	}
	if older.size > v.size {
		panic("appendmem: Diff with newer 'older' view")
	}
	if older.size < v.mem.watermark && v.size > older.size {
		panic(fmt.Sprintf("appendmem: Diff from view of size %d below watermark %d", older.size, v.mem.watermark))
	}
	msgs := make([]*Message, v.size-older.size)
	for i := range msgs {
		msgs[i] = v.mem.msg(MsgID(older.size + i))
	}
	return msgs
}

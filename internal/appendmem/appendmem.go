// Package appendmem implements the append memory model of Melnyk and
// Wattenhofer (SPAA 2020, Section 1.1): n unbounded single-writer registers
// R_1..R_n supporting R_i.read() and R_i.append(msg), equivalently viewed as
// one register M that every node appends to and reads in full.
//
// The memory enforces exactly the powers the paper grants and no more:
//
//   - Single-writer order. Register R_i totally orders the messages of node
//     v_i; this is enforced structurally through the Writer capability.
//   - No overwrites. Appended messages are immutable and never removed.
//   - Instant visibility. An appended message is part of every later read.
//   - No cross-register ordering. The memory "withdraws the power of
//     ordering messages": a View iterates messages in (author, sequence)
//     order, which conveys no information about real arrival interleaving.
//     The arrival order exists internally (it defines what a read at time τ
//     returns) but is only exposed through the Timestamps accessor, which
//     models the central timestamp authority of Section 5.1 and must only
//     be used by the timestamp baseline protocol.
//
// All ordering semantics protocols care about (chain parents, DAG parents,
// round labels) travel inside Message payloads, exactly as in the paper
// where a message "contains some value from this node and a reference to a
// previous state of the memory".
//
// A Memory is not safe for concurrent use; the deterministic simulator
// drives each run from a single goroutine, and parallel trials use disjoint
// Memory instances.
package appendmem

import (
	"errors"
	"fmt"
	"sort"
)

// NodeID identifies a node (register owner) in [0, n).
type NodeID int

// MsgID is the internal identity of an appended message. IDs are assigned
// in arrival order but protocols must not use them to infer cross-register
// ordering; they are opaque handles for parent references.
type MsgID int

// None is the null MsgID, used e.g. as the chain-genesis parent marker.
const None MsgID = -1

// Message is one appended command. Fields are set at append time and
// immutable afterwards.
type Message struct {
	ID      MsgID
	Author  NodeID
	Seq     int     // position within the author's register R_Author
	Value   int64   // protocol value (input bit, ±1 vote, ...)
	Round   int     // protocol round label; 0 when unused
	Parents []MsgID // references to previous appends (the "previous state")
}

// Errors returned by Append.
var (
	ErrCrashed       = errors.New("appendmem: writer has crashed")
	ErrUnknownParent = errors.New("appendmem: parent reference not in memory")
)

// Memory is the shared append memory for n nodes.
type Memory struct {
	n       int
	log     []*Message // arrival order; index == MsgID
	regs    [][]MsgID  // per-author registers, in author order
	writers []*Writer
}

// New creates an append memory for n nodes. It panics when n <= 0.
func New(n int) *Memory {
	if n <= 0 {
		panic("appendmem: New with non-positive n")
	}
	m := &Memory{n: n, regs: make([][]MsgID, n), writers: make([]*Writer, n)}
	for i := range m.writers {
		m.writers[i] = &Writer{mem: m, owner: NodeID(i)}
	}
	return m
}

// NumNodes returns n.
func (m *Memory) NumNodes() int { return m.n }

// Len returns the total number of messages appended so far.
func (m *Memory) Len() int { return len(m.log) }

// Writer returns the append capability of node id. There is exactly one
// Writer per register; handing it to one node enforces the single-writer
// rule structurally. It panics for an out-of-range id.
func (m *Memory) Writer(id NodeID) *Writer {
	if id < 0 || int(id) >= m.n {
		panic(fmt.Sprintf("appendmem: Writer(%d) out of range [0,%d)", id, m.n))
	}
	return m.writers[id]
}

// Message returns the message with the given id, or nil when the id is
// invalid or None.
func (m *Memory) Message(id MsgID) *Message {
	if id < 0 || int(id) >= len(m.log) {
		return nil
	}
	return m.log[id]
}

// Read returns the current full view of the memory, M.read() in the paper.
// The view is an immutable snapshot: later appends do not affect it.
func (m *Memory) Read() View { return View{mem: m, size: len(m.log)} }

// ViewAt returns the view consisting of the first size appended messages.
// It panics when size is negative or exceeds Len. ViewAt(0) is the empty
// initial memory state M(0).
func (m *Memory) ViewAt(size int) View {
	if size < 0 || size > len(m.log) {
		panic(fmt.Sprintf("appendmem: ViewAt(%d) out of range [0,%d]", size, len(m.log)))
	}
	return View{mem: m, size: size}
}

// Register returns the ids of node id's messages in append order — the
// contents of register R_id. The returned slice is a copy.
func (m *Memory) Register(id NodeID) []MsgID {
	if id < 0 || int(id) >= m.n {
		panic(fmt.Sprintf("appendmem: Register(%d) out of range [0,%d)", id, m.n))
	}
	return append([]MsgID(nil), m.regs[id]...)
}

// Timestamps exposes the global arrival order of all messages. This models
// the central authority of Section 5.1 that stamps every append; only the
// timestamp baseline protocol (Algorithm 4) may use it. The returned slice
// is a copy in arrival order.
func (m *Memory) Timestamps() []MsgID {
	ids := make([]MsgID, len(m.log))
	for i, msg := range m.log {
		ids[i] = msg.ID
	}
	return ids
}

// Writer is the exclusive append capability for one register.
type Writer struct {
	mem     *Memory
	owner   NodeID
	crashed bool
}

// Owner returns the register this writer appends to.
func (w *Writer) Owner() NodeID { return w.owner }

// Crashed reports whether Crash has been called.
func (w *Writer) Crashed() bool { return w.crashed }

// Crash permanently disables the writer, modelling a crash failure: the
// node stops executing the protocol at an arbitrary point.
func (w *Writer) Crash() { w.crashed = true }

// Append appends a message carrying value, round and parent references to
// the owner's register and returns it. Parents must already be in memory
// (a node may reference an obsolete state, but never a future one). The
// append is visible to all subsequent reads.
func (w *Writer) Append(value int64, round int, parents []MsgID) (*Message, error) {
	if w.crashed {
		return nil, ErrCrashed
	}
	for _, p := range parents {
		if p == None {
			continue
		}
		if w.mem.Message(p) == nil {
			return nil, fmt.Errorf("%w: %d", ErrUnknownParent, p)
		}
	}
	msg := &Message{
		ID:      MsgID(len(w.mem.log)),
		Author:  w.owner,
		Seq:     len(w.mem.regs[w.owner]),
		Value:   value,
		Round:   round,
		Parents: append([]MsgID(nil), parents...),
	}
	w.mem.log = append(w.mem.log, msg)
	w.mem.regs[w.owner] = append(w.mem.regs[w.owner], msg.ID)
	return msg, nil
}

// MustAppend is Append but panics on error; for protocol code where a
// failure indicates a bug rather than a modelled fault.
func (w *Writer) MustAppend(value int64, round int, parents []MsgID) *Message {
	msg, err := w.Append(value, round, parents)
	if err != nil {
		panic(err)
	}
	return msg
}

// View is an immutable snapshot of the memory: the set of messages
// appended before some point in (simulated) time. Views are totally
// ordered by inclusion, matching the paper's M(τ) ⊆ M(τ') for τ ≤ τ'.
type View struct {
	mem  *Memory
	size int
}

// Size returns the number of messages in the view.
func (v View) Size() int { return v.size }

// Empty reports whether the view is the initial empty memory state.
func (v View) Empty() bool { return v.size == 0 }

// Contains reports whether the message with the given id is in the view.
func (v View) Contains(id MsgID) bool { return id >= 0 && int(id) < v.size }

// Message returns the message with the given id when it is in the view,
// else nil.
func (v View) Message(id MsgID) *Message {
	if !v.Contains(id) {
		return nil
	}
	return v.mem.log[id]
}

// Messages returns all messages in the view sorted by (author, seq). This
// order is deterministic but deliberately independent of arrival
// interleaving across registers, so protocols cannot extract a total order
// the model forbids.
func (v View) Messages() []*Message {
	msgs := make([]*Message, v.size)
	copy(msgs, v.mem.log[:v.size])
	sort.Slice(msgs, func(i, j int) bool {
		if msgs[i].Author != msgs[j].Author {
			return msgs[i].Author < msgs[j].Author
		}
		return msgs[i].Seq < msgs[j].Seq
	})
	return msgs
}

// ByAuthor returns the messages of one author inside the view, in the
// author's register order.
func (v View) ByAuthor(id NodeID) []*Message {
	var msgs []*Message
	for _, mid := range v.mem.regs[id] {
		if !v.Contains(mid) {
			break // register order equals arrival order per author
		}
		msgs = append(msgs, v.mem.log[mid])
	}
	return msgs
}

// ByRound returns all messages in the view labelled with the given round,
// sorted by (author, seq).
func (v View) ByRound(round int) []*Message {
	var msgs []*Message
	for _, msg := range v.mem.log[:v.size] {
		if msg.Round == round {
			msgs = append(msgs, msg)
		}
	}
	sort.Slice(msgs, func(i, j int) bool {
		if msgs[i].Author != msgs[j].Author {
			return msgs[i].Author < msgs[j].Author
		}
		return msgs[i].Seq < msgs[j].Seq
	})
	return msgs
}

// ArrivalOrder returns the view's messages in the global arrival order.
// Like Memory.Timestamps, this models the absolute-timestamp authority of
// Section 5.1 and must only be used by the timestamp baseline protocol
// (Algorithm 4); chain and DAG protocols are forbidden this information.
func (v View) ArrivalOrder() []*Message {
	msgs := make([]*Message, v.size)
	copy(msgs, v.mem.log[:v.size])
	return msgs
}

// SubsetOf reports whether v is contained in other. Views over the same
// memory are totally ordered by inclusion.
func (v View) SubsetOf(other View) bool {
	return v.mem == other.mem && v.size <= other.size
}

// Diff returns the messages in v that are not in older, i.e. the appends
// between the two reads, in arrival order. It panics when the views come
// from different memories or older is larger.
func (v View) Diff(older View) []*Message {
	if v.mem != older.mem {
		panic("appendmem: Diff across memories")
	}
	if older.size > v.size {
		panic("appendmem: Diff with newer 'older' view")
	}
	msgs := make([]*Message, v.size-older.size)
	copy(msgs, v.mem.log[older.size:v.size])
	return msgs
}

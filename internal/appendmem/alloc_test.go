package appendmem

import "testing"

// TestAppendNoAllocs pins the tentpole property of the slab layout: an
// append whose chunk, parent arena and author register all have spare
// capacity allocates nothing — no per-message box, no per-parents slice.
// The 520-append warm-up parks the memory mid-chunk (chunk 5 spans ids
// 496..1007) with arena and register capacity past the measured window,
// so the measured appends never cross a growth boundary.
func TestAppendNoAllocs(t *testing.T) {
	m := New(4)
	w := m.Writer(0)
	parents := []MsgID{None}
	for i := 0; i < 520; i++ {
		msg := w.MustAppend(int64(i), 0, parents)
		parents[0] = msg.ID
	}

	allocs := testing.AllocsPerRun(100, func() {
		msg := w.MustAppend(1, 0, parents)
		parents[0] = msg.ID
	})
	if allocs != 0 {
		t.Fatalf("append allocated %.1f times per op, want 0", allocs)
	}
}

// TestViewEachNoAllocs pins allocation-free full-view iteration: Each
// walks the per-author registers in (author, seq) order with no sorting
// scratch and no per-message boxing.
func TestViewEachNoAllocs(t *testing.T) {
	m := New(4)
	parents := []MsgID{None}
	for i := 0; i < 200; i++ {
		msg := m.Writer(NodeID(i%4)).MustAppend(int64(i), 0, parents)
		parents[0] = msg.ID
	}
	v := m.Read()

	var sum int64
	yield := func(msg *Message) bool {
		sum += msg.Value
		return true
	}
	allocs := testing.AllocsPerRun(100, func() {
		sum = 0
		v.Each(yield)
	})
	if allocs != 0 {
		t.Fatalf("full-view Each allocated %.1f times per op, want 0", allocs)
	}
	var want int64
	for i := 0; i < 200; i++ {
		want += int64(i)
	}
	if sum != want {
		t.Fatalf("Each visited the wrong messages: sum=%d want=%d", sum, want)
	}
}

// TestAppendStablePointers checks the property the whole zero-alloc design
// rests on: growing the memory never moves already-returned messages.
func TestAppendStablePointers(t *testing.T) {
	m := New(2)
	w := m.Writer(0)
	var ptrs []*Message
	parents := []MsgID{None}
	for i := 0; i < 5000; i++ {
		msg := w.MustAppend(int64(i), 0, parents)
		parents[0] = msg.ID
		ptrs = append(ptrs, msg)
	}
	for i, p := range ptrs {
		if m.Message(MsgID(i)) != p {
			t.Fatalf("message %d moved: %p vs %p", i, m.Message(MsgID(i)), p)
		}
		if p.Value != int64(i) {
			t.Fatalf("message %d corrupted: value %d", i, p.Value)
		}
	}
}

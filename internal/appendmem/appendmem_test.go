package appendmem

import (
	"errors"
	"testing"
	"testing/quick"

	"repro/internal/xrand"
)

func TestNewPanicsOnBadN(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("New(0) did not panic")
		}
	}()
	New(0)
}

func TestAppendAndRead(t *testing.T) {
	m := New(3)
	w0 := m.Writer(0)
	msg, err := w0.Append(+1, 1, nil)
	if err != nil {
		t.Fatal(err)
	}
	if msg.ID != 0 || msg.Author != 0 || msg.Seq != 0 || msg.Value != +1 || msg.Round != 1 {
		t.Fatalf("unexpected message %+v", msg)
	}
	v := m.Read()
	if v.Size() != 1 || !v.Contains(msg.ID) {
		t.Fatalf("view missing appended message")
	}
}

func TestSingleWriterSeq(t *testing.T) {
	m := New(2)
	w := m.Writer(1)
	for i := 0; i < 5; i++ {
		msg := w.MustAppend(int64(i), 0, nil)
		if msg.Seq != i {
			t.Fatalf("seq = %d, want %d", msg.Seq, i)
		}
	}
	reg := m.Register(1)
	if len(reg) != 5 {
		t.Fatalf("register length = %d", len(reg))
	}
	for i := 1; i < len(reg); i++ {
		if m.Message(reg[i]).Seq != m.Message(reg[i-1]).Seq+1 {
			t.Fatal("register order broken")
		}
	}
	if len(m.Register(0)) != 0 {
		t.Fatal("wrong register received appends")
	}
}

func TestWriterIsStable(t *testing.T) {
	m := New(2)
	if m.Writer(0) != m.Writer(0) {
		t.Fatal("Writer not a stable capability")
	}
}

func TestCrash(t *testing.T) {
	m := New(2)
	w := m.Writer(0)
	w.MustAppend(1, 0, nil)
	w.Crash()
	if !w.Crashed() {
		t.Fatal("Crashed() false after Crash")
	}
	if _, err := w.Append(2, 0, nil); !errors.Is(err, ErrCrashed) {
		t.Fatalf("append after crash: err = %v, want ErrCrashed", err)
	}
	if m.Len() != 1 {
		t.Fatal("crashed append reached memory")
	}
}

func TestUnknownParentRejected(t *testing.T) {
	m := New(2)
	w := m.Writer(0)
	if _, err := w.Append(1, 0, []MsgID{42}); !errors.Is(err, ErrUnknownParent) {
		t.Fatalf("err = %v, want ErrUnknownParent", err)
	}
	if m.Len() != 0 {
		t.Fatal("invalid append reached memory")
	}
}

func TestNoneParentAllowed(t *testing.T) {
	m := New(1)
	if _, err := m.Writer(0).Append(1, 0, []MsgID{None}); err != nil {
		t.Fatalf("genesis parent rejected: %v", err)
	}
}

func TestObsoleteParentAllowed(t *testing.T) {
	// A node may append referencing an old state of the memory (async model).
	m := New(3)
	first := m.Writer(0).MustAppend(1, 0, nil)
	for i := 0; i < 10; i++ {
		m.Writer(1).MustAppend(1, 0, nil)
	}
	msg, err := m.Writer(2).Append(1, 0, []MsgID{first.ID})
	if err != nil {
		t.Fatal(err)
	}
	if msg.Parents[0] != first.ID {
		t.Fatal("obsolete parent not recorded")
	}
}

func TestParentsAreCopied(t *testing.T) {
	m := New(2)
	a := m.Writer(0).MustAppend(1, 0, nil)
	parents := []MsgID{a.ID}
	msg := m.Writer(1).MustAppend(1, 0, parents)
	parents[0] = 99
	if msg.Parents[0] != a.ID {
		t.Fatal("Append aliased the caller's parents slice")
	}
}

func TestViewImmutableSnapshot(t *testing.T) {
	m := New(2)
	m.Writer(0).MustAppend(1, 0, nil)
	v := m.Read()
	m.Writer(1).MustAppend(2, 0, nil)
	if v.Size() != 1 {
		t.Fatal("view grew after later append")
	}
	if m.Read().Size() != 2 {
		t.Fatal("new read missing later append")
	}
}

func TestViewMonotonicity(t *testing.T) {
	// Views are totally ordered by inclusion: M(τ) ⊆ M(τ') for τ ≤ τ'.
	m := New(4)
	rng := xrand.New(1, 1)
	var views []View
	for i := 0; i < 100; i++ {
		m.Writer(NodeID(rng.Intn(4))).MustAppend(int64(i), 0, nil)
		views = append(views, m.Read())
	}
	for i := 1; i < len(views); i++ {
		if !views[i-1].SubsetOf(views[i]) {
			t.Fatal("earlier view not subset of later view")
		}
	}
}

func TestViewMessagesOrderIndependentOfArrival(t *testing.T) {
	// Two memories receive the same per-author messages in different
	// arrival interleavings; Messages() must look identical.
	build := func(order []NodeID) []*Message {
		m := New(3)
		seq := map[NodeID]int64{}
		for _, a := range order {
			m.Writer(a).MustAppend(seq[a], 0, nil)
			seq[a]++
		}
		return m.Read().Messages()
	}
	a := build([]NodeID{0, 1, 2, 0, 1, 2})
	b := build([]NodeID{2, 1, 0, 2, 1, 0})
	if len(a) != len(b) {
		t.Fatal("different sizes")
	}
	for i := range a {
		if a[i].Author != b[i].Author || a[i].Seq != b[i].Seq || a[i].Value != b[i].Value {
			t.Fatalf("Messages() leaks arrival order at %d: %+v vs %+v", i, a[i], b[i])
		}
	}
}

func TestByAuthor(t *testing.T) {
	m := New(3)
	m.Writer(0).MustAppend(10, 0, nil)
	m.Writer(1).MustAppend(20, 0, nil)
	m.Writer(0).MustAppend(11, 0, nil)
	v := m.ViewAt(2) // only first two appends visible
	got := v.ByAuthor(0)
	if len(got) != 1 || got[0].Value != 10 {
		t.Fatalf("ByAuthor(0) in partial view = %v", got)
	}
	full := m.Read().ByAuthor(0)
	if len(full) != 2 || full[1].Value != 11 {
		t.Fatalf("ByAuthor(0) full = %v", full)
	}
}

func TestByRound(t *testing.T) {
	m := New(2)
	m.Writer(0).MustAppend(1, 1, nil)
	m.Writer(1).MustAppend(2, 2, nil)
	m.Writer(0).MustAppend(3, 2, nil)
	r2 := m.Read().ByRound(2)
	if len(r2) != 2 {
		t.Fatalf("ByRound(2) = %d messages, want 2", len(r2))
	}
	if r2[0].Author != 0 || r2[1].Author != 1 {
		t.Fatal("ByRound not sorted by author")
	}
}

func TestDiff(t *testing.T) {
	m := New(2)
	m.Writer(0).MustAppend(1, 0, nil)
	old := m.Read()
	m.Writer(1).MustAppend(2, 0, nil)
	m.Writer(0).MustAppend(3, 0, nil)
	diff := m.Read().Diff(old)
	if len(diff) != 2 || diff[0].Value != 2 || diff[1].Value != 3 {
		t.Fatalf("Diff = %v", diff)
	}
}

func TestTimestampsArrivalOrder(t *testing.T) {
	m := New(3)
	m.Writer(2).MustAppend(1, 0, nil)
	m.Writer(0).MustAppend(2, 0, nil)
	m.Writer(1).MustAppend(3, 0, nil)
	ts := m.Timestamps()
	if len(ts) != 3 {
		t.Fatal("wrong length")
	}
	for i, id := range ts {
		if int(id) != i {
			t.Fatalf("Timestamps()[%d] = %d", i, id)
		}
	}
}

func TestViewAtBounds(t *testing.T) {
	m := New(1)
	m.Writer(0).MustAppend(1, 0, nil)
	defer func() {
		if recover() == nil {
			t.Fatal("ViewAt out of range did not panic")
		}
	}()
	m.ViewAt(2)
}

func TestPropertyAppendMonotone(t *testing.T) {
	// Property: after any sequence of appends, (a) Len equals sum of
	// register lengths, (b) every register's messages have contiguous Seq,
	// (c) every parent reference points to a smaller MsgID.
	rng := xrand.New(7, 7)
	if err := quick.Check(func(steps uint8) bool {
		n := 4
		m := New(n)
		var ids []MsgID
		for s := 0; s < int(steps%64)+1; s++ {
			author := NodeID(rng.Intn(n))
			var parents []MsgID
			if len(ids) > 0 && rng.Bool() {
				parents = []MsgID{ids[rng.Intn(len(ids))]}
			}
			msg, err := m.Writer(author).Append(1, 0, parents)
			if err != nil {
				return false
			}
			ids = append(ids, msg.ID)
		}
		total := 0
		for i := 0; i < n; i++ {
			reg := m.Register(NodeID(i))
			total += len(reg)
			for j, id := range reg {
				if m.Message(id).Seq != j {
					return false
				}
			}
		}
		if total != m.Len() {
			return false
		}
		for _, msg := range m.Read().Messages() {
			for _, p := range msg.Parents {
				if p >= msg.ID {
					return false
				}
			}
		}
		return true
	}, nil); err != nil {
		t.Error(err)
	}
}

func TestAccessorsAndPanics(t *testing.T) {
	m := New(3)
	if m.NumNodes() != 3 {
		t.Fatal("NumNodes wrong")
	}
	w := m.Writer(1)
	if w.Owner() != 1 {
		t.Fatal("Owner wrong")
	}
	v := m.Read()
	if !v.Empty() {
		t.Fatal("fresh view not empty")
	}
	if v.Message(0) != nil {
		t.Fatal("Message on empty view not nil")
	}
	msg := w.MustAppend(5, 0, nil)
	v2 := m.Read()
	if v2.Empty() || v2.Message(msg.ID) == nil {
		t.Fatal("view accessors broken after append")
	}

	for _, f := range []func(){
		func() { m.Writer(9) },
		func() { m.Register(9) },
		func() { v.Diff(v2) },                         // newer "older" view
		func() { w.Crash(); w.MustAppend(1, 0, nil) }, // MustAppend panics on error
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Error("expected panic")
				}
			}()
			f()
		}()
	}
}

func TestArrivalOrderAccessor(t *testing.T) {
	m := New(3)
	m.Writer(2).MustAppend(1, 0, nil)
	m.Writer(0).MustAppend(2, 0, nil)
	m.Writer(1).MustAppend(3, 0, nil)
	got := m.Read().ArrivalOrder()
	if len(got) != 3 {
		t.Fatal("wrong length")
	}
	for i, msg := range got {
		if int(msg.ID) != i {
			t.Fatalf("arrival order broken at %d", i)
		}
	}
	// Partial view truncates.
	partial := m.ViewAt(2).ArrivalOrder()
	if len(partial) != 2 {
		t.Fatal("partial arrival order wrong")
	}
}

func TestDiffAcrossMemoriesPanics(t *testing.T) {
	a, b := New(1), New(1)
	a.Writer(0).MustAppend(1, 0, nil)
	b.Writer(0).MustAppend(1, 0, nil)
	defer func() {
		if recover() == nil {
			t.Fatal("cross-memory Diff did not panic")
		}
	}()
	a.Read().Diff(b.Read())
}

// Tests for the windowed (bounded-live) memory mode: fixed-chunk geometry,
// watermark retirement, slab reuse, and the hard panics that turn any read
// below the watermark into a bug report instead of silent garbage.
package appendmem

import (
	"testing"
)

// fill appends n single-author messages carrying their id as value and
// returns the memory. chunkSize fixes the slab geometry.
func fillBounded(t *testing.T, nodes, chunkSize, n int) *Memory {
	t.Helper()
	m := NewBounded(nodes, chunkSize)
	for i := 0; i < n; i++ {
		w := m.Writer(NodeID(i % nodes))
		var parents []MsgID
		if i > 0 {
			parents = []MsgID{MsgID(i - 1)}
		}
		if _, err := w.Append(int64(i), 0, parents); err != nil {
			t.Fatal(err)
		}
	}
	return m
}

// TestRetireMidChunkKeepsLiveMessages is the regression test for the chunk
// release boundary: a watermark in the middle of a chunk must keep that
// whole chunk allocated — every id at or above the watermark stays
// readable, whichever slot of its chunk it occupies.
func TestRetireMidChunkKeepsLiveMessages(t *testing.T) {
	const chunk = 16
	m := fillBounded(t, 3, chunk, 100)
	// Watermarks chosen to land mid-chunk, at chunk starts, and at chunk
	// ends; each must leave [w, 100) fully readable.
	for _, w := range []int{5, 17, 31, 32, 33, 47, 63, 64, 90} {
		m.Retire(w)
		if got := m.Watermark(); got != w {
			t.Fatalf("watermark after Retire(%d): %d", w, got)
		}
		for id := w; id < 100; id++ {
			msg := m.Message(MsgID(id))
			if msg == nil || msg.Value != int64(id) {
				t.Fatalf("after Retire(%d): message %d = %+v", w, id, msg)
			}
		}
	}
}

func TestRetireMonotoneAndBounds(t *testing.T) {
	m := fillBounded(t, 2, 16, 64)
	m.Retire(40)
	m.Retire(20) // below current watermark: no-op
	if m.Watermark() != 40 {
		t.Fatalf("watermark regressed to %d", m.Watermark())
	}
	defer func() {
		if recover() == nil {
			t.Fatal("Retire beyond Len did not panic")
		}
	}()
	m.Retire(65)
}

func TestReadBelowWatermarkPanics(t *testing.T) {
	m := fillBounded(t, 2, 16, 64)
	m.Retire(40)
	for name, read := range map[string]func(){
		"Message":    func() { m.Message(MsgID(39)) },
		"ViewAt":     func() { m.ViewAt(30).Message(MsgID(10)) },
		"Each":       func() { m.ViewAt(30).Each(func(*Message) bool { return true }) },
		"ByAuthor":   func() { m.ViewAt(30).ByAuthor(0) },
		"Timestamps": func() { m.Timestamps() },
		"Clone":      func() { m.Clone() },
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("%s below watermark did not panic", name)
				}
			}()
			read()
		}()
	}
}

// TestSlabReuse: retired chunks return through the free list, so a
// windowed memory's allocated chunk count stays bounded by the live window
// regardless of horizon.
func TestSlabReuse(t *testing.T) {
	const chunk = 16
	m := NewBounded(1, chunk)
	w := m.Writer(0)
	for i := 0; i < 100*chunk; i++ {
		if _, err := w.Append(int64(i), 0, nil); err != nil {
			t.Fatal(err)
		}
		if i >= 4*chunk {
			m.Retire(i - 4*chunk)
		}
	}
	if hw := m.LiveHighWater(); hw > 5*chunk {
		t.Fatalf("live high-water %d for a %d-message window", hw, 4*chunk)
	}
	live := 0
	for id := m.Watermark(); id < m.Len(); id++ {
		if m.Message(MsgID(id)).Value != int64(id) {
			t.Fatalf("live message %d corrupted", id)
		}
		live++
	}
	if live != m.Live() {
		t.Fatalf("Live() = %d, counted %d", m.Live(), live)
	}
}

// TestRegistersAcrossRetirement: register lengths and sequence numbers
// survive retirement even though the retired contents do not.
func TestRegistersAcrossRetirement(t *testing.T) {
	m := fillBounded(t, 3, 16, 90)
	m.Retire(60)
	for id := 0; id < 3; id++ {
		if got := m.RegisterLen(NodeID(id)); got != 30 {
			t.Fatalf("RegisterLen(%d) = %d after retirement, want 30", id, got)
		}
		for _, mid := range m.Register(NodeID(id)) {
			if int(mid) < 60 {
				t.Fatalf("Register(%d) kept retired id %d", id, mid)
			}
		}
	}
	// New appends continue the per-author sequence where it left off.
	msg, err := m.Writer(0).Append(999, 0, nil)
	if err != nil {
		t.Fatal(err)
	}
	if msg.Seq != 30 {
		t.Fatalf("post-retirement Seq = %d, want 30", msg.Seq)
	}
}

// TestViewOpsAcrossWatermark: views at or above the watermark keep full
// semantics — Diff, SubsetOf and Each see exactly the live suffix.
func TestViewOpsAcrossWatermark(t *testing.T) {
	m := fillBounded(t, 2, 16, 80)
	older := m.ViewAt(50)
	newer := m.ViewAt(74)
	m.Retire(48)

	if !older.SubsetOf(newer) || newer.SubsetOf(older) {
		t.Fatal("SubsetOf broken across watermark")
	}
	diff := newer.Diff(older)
	if len(diff) != 24 {
		t.Fatalf("Diff length %d, want 24", len(diff))
	}
	for i, msg := range diff {
		if msg.ID != MsgID(50+i) {
			t.Fatalf("diff[%d] = id %d, want %d", i, msg.ID, 50+i)
		}
	}
	// Each enumerates the *live* portion of the view: registers keep only
	// the unretired suffix, so ids below the watermark are gone — by
	// design, a windowed consumer has proven it no longer needs them.
	n := 0
	older.Each(func(msg *Message) bool {
		if int(msg.ID) < 48 {
			t.Fatalf("Each yielded retired id %d", msg.ID)
		}
		n++
		return true
	})
	if n != 2 {
		t.Fatalf("Each over live view visited %d, want 2 (ids 48,49)", n)
	}

	// Diff anchored below the watermark must refuse: the gap it would
	// report includes retired messages.
	m.Retire(60)
	defer func() {
		if recover() == nil {
			t.Fatal("Diff from below-watermark view did not panic")
		}
	}()
	newer.Diff(older)
}

// TestCloneRoundTrip: a clone replays the append sequence — same ids,
// authors, values, parents, crash flags — into disjoint storage.
func TestCloneRoundTrip(t *testing.T) {
	m := New(3)
	for i := 0; i < 40; i++ {
		var parents []MsgID
		if i > 2 {
			parents = []MsgID{MsgID(i - 1), MsgID(i - 3)}
		}
		if _, err := m.Writer(NodeID(i%3)).Append(int64(i*7), i%4, parents); err != nil {
			t.Fatal(err)
		}
	}
	m.Writer(2).Crash()
	c := m.Clone()
	if c.Len() != m.Len() {
		t.Fatalf("clone length %d, want %d", c.Len(), m.Len())
	}
	for id := 0; id < m.Len(); id++ {
		a, b := m.Message(MsgID(id)), c.Message(MsgID(id))
		if a.Author != b.Author || a.Seq != b.Seq || a.Value != b.Value || a.Round != b.Round {
			t.Fatalf("clone message %d: %+v vs %+v", id, a, b)
		}
		if len(a.Parents) != len(b.Parents) {
			t.Fatalf("clone message %d parents: %v vs %v", id, a.Parents, b.Parents)
		}
		for j := range a.Parents {
			if a.Parents[j] != b.Parents[j] {
				t.Fatalf("clone message %d parents: %v vs %v", id, a.Parents, b.Parents)
			}
		}
	}
	// Divergence after the clone: independent storage.
	if _, err := m.Writer(0).Append(1, 0, nil); err != nil {
		t.Fatal(err)
	}
	if c.Len() == m.Len() {
		t.Fatal("clone shares size with original")
	}
	if _, err := c.Writer(2).Append(1, 0, nil); err == nil {
		t.Fatal("clone lost the crash flag")
	}
}

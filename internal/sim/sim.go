// Package sim is a deterministic discrete-event simulator: a virtual clock
// and an event heap with stable tie-breaking.
//
// All protocol executions in this repository run inside a Sim. Determinism
// is load-bearing: a run is a pure function of (Config, Seed), so events at
// equal virtual times fire in scheduling order (a monotone sequence number
// breaks ties), and nothing in the simulator consults wall-clock time or
// global randomness.
//
// The simulator is single-goroutine by design. Parallelism in this
// repository happens across independent trials (one Sim each), never inside
// a run, which keeps executions replayable and the core free of locks.
//
// The event queue is a value-typed binary min-heap: events are stored
// inline in one backing slice (no per-event pointer, no interface boxing),
// so the steady state of a run — heap size fluctuating below its
// high-water mark — schedules and fires events without allocating. The
// ordering key (at, seq) is total (seq is unique), so the fire order is
// independent of the heap's internal layout.
package sim

// Time is virtual simulation time. The unit is arbitrary; protocols use Δ
// (the synchrony bound) as their natural scale.
type Time float64

// Sim is a discrete-event simulator. The zero value is ready to use.
type Sim struct {
	now     Time
	events  []event // value-typed binary min-heap, ordered by (at, seq)
	seq     uint64
	stopped bool
}

type event struct {
	at  Time
	seq uint64
	fn  func()
}

// before reports whether e fires before o: earlier time, scheduling order
// breaking ties.
func (e *event) before(o *event) bool {
	if e.at != o.at {
		return e.at < o.at
	}
	return e.seq < o.seq
}

// siftUp restores the heap property after appending at index i.
func (s *Sim) siftUp(i int) {
	h := s.events
	e := h[i]
	for i > 0 {
		parent := (i - 1) / 2
		if !e.before(&h[parent]) {
			break
		}
		h[i] = h[parent]
		i = parent
	}
	h[i] = e
}

// siftDown restores the heap property after replacing the root.
func (s *Sim) siftDown() {
	h := s.events
	n := len(h)
	e := h[0]
	i := 0
	for {
		l := 2*i + 1
		if l >= n {
			break
		}
		m := l
		if r := l + 1; r < n && h[r].before(&h[l]) {
			m = r
		}
		if !h[m].before(&e) {
			break
		}
		h[i] = h[m]
		i = m
	}
	h[i] = e
}

// New returns a fresh simulator with the clock at zero.
func New() *Sim { return &Sim{} }

// Reset returns the simulator to its initial state — clock at zero, no
// pending events, not stopped — while retaining the event queue's backing
// array, so a pooled Sim reuses its high-water-mark capacity across trials
// instead of re-growing it. Queued event slots are zeroed to release their
// closures to the GC.
func (s *Sim) Reset() {
	for i := range s.events {
		s.events[i] = event{}
	}
	s.events = s.events[:0]
	s.now = 0
	s.seq = 0
	s.stopped = false
}

// Now returns the current virtual time.
func (s *Sim) Now() Time { return s.now }

// StartAt sets the clock of a fresh simulator to t, so a checkpointed run
// resumes mid-stream with every rescheduled event keeping its original
// absolute time. It panics once events are queued or the clock has moved —
// jumping a live simulator would reorder causality.
func (s *Sim) StartAt(t Time) {
	if len(s.events) > 0 || s.now != 0 {
		panic("sim: StartAt on a running simulator")
	}
	s.now = t
}

// Pending returns the number of scheduled, not-yet-fired events.
func (s *Sim) Pending() int { return len(s.events) }

// At schedules fn to run at absolute virtual time t. Scheduling in the past
// panics — it would silently reorder causality.
func (s *Sim) At(t Time, fn func()) {
	if t < s.now {
		panic("sim: scheduling event in the past")
	}
	s.seq++
	s.events = append(s.events, event{at: t, seq: s.seq, fn: fn})
	s.siftUp(len(s.events) - 1)
}

// After schedules fn to run d time units from now. Negative d panics.
func (s *Sim) After(d Time, fn func()) { s.At(s.now+d, fn) }

// Stop makes the current Run/RunUntil return after the executing event
// completes. Remaining events stay queued.
func (s *Sim) Stop() { s.stopped = true }

// Stopped reports whether Stop has been called.
func (s *Sim) Stopped() bool { return s.stopped }

// Step fires the earliest pending event and returns true, or returns false
// when the queue is empty.
func (s *Sim) Step() bool {
	if len(s.events) == 0 {
		return false
	}
	e := s.events[0]
	n := len(s.events) - 1
	s.events[0] = s.events[n]
	s.events[n] = event{} // release the closure
	s.events = s.events[:n]
	if n > 0 {
		s.siftDown()
	}
	s.now = e.at
	e.fn()
	return true
}

// Run fires events until the queue is empty or Stop is called. It returns
// the number of events fired.
func (s *Sim) Run() int {
	fired := 0
	for !s.stopped && s.Step() {
		fired++
	}
	return fired
}

// RunUntil fires events with time <= deadline (or until Stop), advances the
// clock to the deadline, and returns the number of events fired. Events
// scheduled beyond the deadline stay queued.
func (s *Sim) RunUntil(deadline Time) int {
	fired := 0
	for !s.stopped && len(s.events) > 0 && s.events[0].at <= deadline {
		s.Step()
		fired++
	}
	if !s.stopped && s.now < deadline {
		s.now = deadline
	}
	return fired
}

// Package sim is a deterministic discrete-event simulator: a virtual clock
// and an event heap with stable tie-breaking.
//
// All protocol executions in this repository run inside a Sim. Determinism
// is load-bearing: a run is a pure function of (Config, Seed), so events at
// equal virtual times fire in scheduling order (a monotone sequence number
// breaks ties), and nothing in the simulator consults wall-clock time or
// global randomness.
//
// The simulator is single-goroutine by design. Parallelism in this
// repository happens across independent trials (one Sim each), never inside
// a run, which keeps executions replayable and the core free of locks.
package sim

import "container/heap"

// Time is virtual simulation time. The unit is arbitrary; protocols use Δ
// (the synchrony bound) as their natural scale.
type Time float64

// Sim is a discrete-event simulator. The zero value is ready to use.
type Sim struct {
	now     Time
	events  eventHeap
	seq     uint64
	stopped bool
}

type event struct {
	at  Time
	seq uint64
	fn  func()
}

type eventHeap []*event

func (h eventHeap) Len() int { return len(h) }
func (h eventHeap) Less(i, j int) bool {
	if h[i].at != h[j].at {
		return h[i].at < h[j].at
	}
	return h[i].seq < h[j].seq
}
func (h eventHeap) Swap(i, j int) { h[i], h[j] = h[j], h[i] }
func (h *eventHeap) Push(x any)   { *h = append(*h, x.(*event)) }
func (h *eventHeap) Pop() any {
	old := *h
	n := len(old)
	e := old[n-1]
	old[n-1] = nil
	*h = old[:n-1]
	return e
}

// New returns a fresh simulator with the clock at zero.
func New() *Sim { return &Sim{} }

// Now returns the current virtual time.
func (s *Sim) Now() Time { return s.now }

// Pending returns the number of scheduled, not-yet-fired events.
func (s *Sim) Pending() int { return len(s.events) }

// At schedules fn to run at absolute virtual time t. Scheduling in the past
// panics — it would silently reorder causality.
func (s *Sim) At(t Time, fn func()) {
	if t < s.now {
		panic("sim: scheduling event in the past")
	}
	s.seq++
	heap.Push(&s.events, &event{at: t, seq: s.seq, fn: fn})
}

// After schedules fn to run d time units from now. Negative d panics.
func (s *Sim) After(d Time, fn func()) { s.At(s.now+d, fn) }

// Stop makes the current Run/RunUntil return after the executing event
// completes. Remaining events stay queued.
func (s *Sim) Stop() { s.stopped = true }

// Stopped reports whether Stop has been called.
func (s *Sim) Stopped() bool { return s.stopped }

// Step fires the earliest pending event and returns true, or returns false
// when the queue is empty.
func (s *Sim) Step() bool {
	if len(s.events) == 0 {
		return false
	}
	e := heap.Pop(&s.events).(*event)
	s.now = e.at
	e.fn()
	return true
}

// Run fires events until the queue is empty or Stop is called. It returns
// the number of events fired.
func (s *Sim) Run() int {
	fired := 0
	for !s.stopped && s.Step() {
		fired++
	}
	return fired
}

// RunUntil fires events with time <= deadline (or until Stop), advances the
// clock to the deadline, and returns the number of events fired. Events
// scheduled beyond the deadline stay queued.
func (s *Sim) RunUntil(deadline Time) int {
	fired := 0
	for !s.stopped && len(s.events) > 0 && s.events[0].at <= deadline {
		s.Step()
		fired++
	}
	if !s.stopped && s.now < deadline {
		s.now = deadline
	}
	return fired
}

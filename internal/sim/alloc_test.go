package sim

import "testing"

// TestScheduleStepNoAllocs pins the steady-state allocation behaviour the
// trial pooling depends on: once the event heap's backing array has grown
// to its working size, At and Step allocate nothing. Scheduling a
// pre-bound callback must not box it, and popping must not shrink or
// reallocate the heap.
func TestScheduleStepNoAllocs(t *testing.T) {
	s := New()
	fn := func() {}

	// Warm the heap's capacity past anything the measured loop needs.
	for i := 0; i < 64; i++ {
		s.At(Time(i), fn)
	}
	for s.Step() {
	}

	allocs := testing.AllocsPerRun(100, func() {
		s.At(s.Now()+1, fn)
		s.Step()
	})
	if allocs != 0 {
		t.Fatalf("At+Step allocated %.1f times per op, want 0", allocs)
	}
}

// TestResetRetainsCapacity checks Reset keeps the grown backing array, so
// a pooled Sim re-enters service already warm.
func TestResetRetainsCapacity(t *testing.T) {
	s := New()
	fn := func() {}
	for i := 0; i < 64; i++ {
		s.At(Time(i), fn)
	}
	grown := cap(s.events)
	s.Reset()
	if cap(s.events) != grown {
		t.Fatalf("Reset dropped heap capacity: %d -> %d", grown, cap(s.events))
	}
	if s.Pending() != 0 || s.Now() != 0 || s.Stopped() {
		t.Fatalf("Reset left state behind: pending=%d now=%v stopped=%v",
			s.Pending(), s.Now(), s.Stopped())
	}
}

package sim

import (
	"testing"

	"repro/internal/xrand"
)

func TestEmptyRun(t *testing.T) {
	s := New()
	if n := s.Run(); n != 0 {
		t.Fatalf("Run on empty sim fired %d events", n)
	}
	if s.Now() != 0 {
		t.Fatalf("clock moved: %v", s.Now())
	}
}

func TestEventOrder(t *testing.T) {
	s := New()
	var order []int
	s.At(3, func() { order = append(order, 3) })
	s.At(1, func() { order = append(order, 1) })
	s.At(2, func() { order = append(order, 2) })
	s.Run()
	for i, v := range []int{1, 2, 3} {
		if order[i] != v {
			t.Fatalf("order = %v", order)
		}
	}
}

func TestTieBreakBySchedulingOrder(t *testing.T) {
	s := New()
	var order []string
	s.At(5, func() { order = append(order, "a") })
	s.At(5, func() { order = append(order, "b") })
	s.At(5, func() { order = append(order, "c") })
	s.Run()
	if order[0] != "a" || order[1] != "b" || order[2] != "c" {
		t.Fatalf("ties broken unstably: %v", order)
	}
}

func TestClockAdvances(t *testing.T) {
	s := New()
	var seen []Time
	s.At(1.5, func() { seen = append(seen, s.Now()) })
	s.At(2.5, func() { seen = append(seen, s.Now()) })
	s.Run()
	if seen[0] != 1.5 || seen[1] != 2.5 {
		t.Fatalf("Now() inside events = %v", seen)
	}
}

func TestNestedScheduling(t *testing.T) {
	s := New()
	count := 0
	var tick func()
	tick = func() {
		count++
		if count < 10 {
			s.After(1, tick)
		}
	}
	s.After(1, tick)
	s.Run()
	if count != 10 {
		t.Fatalf("count = %d", count)
	}
	if s.Now() != 10 {
		t.Fatalf("final time = %v", s.Now())
	}
}

func TestSchedulingInPastPanics(t *testing.T) {
	s := New()
	s.At(5, func() {
		defer func() {
			if recover() == nil {
				t.Error("scheduling in the past did not panic")
			}
		}()
		s.At(1, func() {})
	})
	s.Run()
}

func TestStop(t *testing.T) {
	s := New()
	fired := 0
	s.At(1, func() { fired++; s.Stop() })
	s.At(2, func() { fired++ })
	s.Run()
	if fired != 1 {
		t.Fatalf("fired = %d after Stop", fired)
	}
	if !s.Stopped() {
		t.Fatal("Stopped() false")
	}
	if s.Pending() != 1 {
		t.Fatalf("pending = %d, want 1", s.Pending())
	}
}

func TestRunUntil(t *testing.T) {
	s := New()
	var fired []Time
	for _, at := range []Time{1, 2, 3, 4, 5} {
		at := at
		s.At(at, func() { fired = append(fired, at) })
	}
	n := s.RunUntil(3)
	if n != 3 || len(fired) != 3 {
		t.Fatalf("fired %d events, want 3", n)
	}
	if s.Now() != 3 {
		t.Fatalf("clock = %v, want 3", s.Now())
	}
	s.Run()
	if len(fired) != 5 {
		t.Fatal("remaining events lost")
	}
}

func TestRunUntilAdvancesIdleClock(t *testing.T) {
	s := New()
	s.RunUntil(7)
	if s.Now() != 7 {
		t.Fatalf("idle clock = %v, want 7", s.Now())
	}
}

func TestDeterministicUnderLoad(t *testing.T) {
	run := func() []int {
		s := New()
		rng := xrand.New(42, 42)
		var order []int
		for i := 0; i < 1000; i++ {
			i := i
			s.At(Time(rng.Intn(100)), func() { order = append(order, i) })
		}
		s.Run()
		return order
	}
	a, b := run(), run()
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("nondeterministic at %d", i)
		}
	}
}

func TestMonotoneClock(t *testing.T) {
	s := New()
	rng := xrand.New(3, 3)
	last := Time(-1)
	ok := true
	for i := 0; i < 500; i++ {
		s.At(Time(rng.Float64()*50), func() {
			if s.Now() < last {
				ok = false
			}
			last = s.Now()
		})
	}
	s.Run()
	if !ok {
		t.Fatal("clock went backwards")
	}
}

// Package dotviz renders append-memory executions as Graphviz DOT:
// blocks as boxes (Byzantine authors red), parent references as edges
// (the DAG's selected-parent edge bold), and the decision prefix — the
// first k blocks of the chain or of the DAG ordering — in bold outline.
// Used by cmd/amdot; kept as a library so rendering is testable and
// reusable from experiments.
package dotviz

import (
	"fmt"
	"strings"

	"repro/internal/appendmem"
	"repro/internal/chain"
	"repro/internal/dag"
)

// Options configures a rendering.
type Options struct {
	// IsByzantine marks authors to colour red; nil means nobody.
	IsByzantine func(appendmem.NodeID) bool
	// K bounds the bolded decision prefix; 0 means no prefix highlighting.
	K int
}

func (o Options) byz(id appendmem.NodeID) bool {
	return o.IsByzantine != nil && o.IsByzantine(id)
}

// Chain renders view as a blockchain: Parents[0] edges only, decision
// prefix = first K blocks of the first-arrived longest chain.
func Chain(view appendmem.View, o Options) string {
	prefix := map[appendmem.MsgID]bool{}
	if o.K > 0 {
		tree := chain.Build(view)
		if tips := tree.LongestTips(); len(tips) > 0 {
			ids := tree.ChainTo(tips[0])
			if len(ids) > o.K {
				ids = ids[:o.K]
			}
			for _, id := range ids {
				prefix[id] = true
			}
		}
	}
	return render(view, o, prefix, false)
}

// Dag renders view as a BlockDAG: all parent edges, the selected-parent
// edge emphasized, decision prefix = first K blocks of the GHOST ordering.
func Dag(view appendmem.View, o Options) string {
	prefix := map[appendmem.MsgID]bool{}
	if o.K > 0 {
		d := dag.Build(view)
		order := d.Linearize(d.GhostPivot())
		if len(order) > o.K {
			order = order[:o.K]
		}
		for _, id := range order {
			prefix[id] = true
		}
	}
	return render(view, o, prefix, true)
}

func render(view appendmem.View, o Options, prefix map[appendmem.MsgID]bool, allParents bool) string {
	var b strings.Builder
	b.WriteString("digraph appendmemory {\n  rankdir=BT;\n  node [shape=box, fontsize=9];\n")
	b.WriteString("  genesis [label=\"∅\", shape=ellipse];\n")
	for _, msg := range view.Messages() {
		color := "black"
		if o.byz(msg.Author) {
			color = "red"
		}
		style := "solid"
		if prefix[msg.ID] {
			style = "bold"
		}
		fmt.Fprintf(&b, "  m%d [label=\"%d: v%d %+d\", color=%s, style=%s];\n",
			msg.ID, msg.ID, msg.Author, msg.Value, color, style)
		if len(msg.Parents) == 0 {
			fmt.Fprintf(&b, "  m%d -> genesis;\n", msg.ID)
			continue
		}
		parents := msg.Parents
		if !allParents {
			parents = parents[:1]
		}
		for i, p := range parents {
			target := "genesis"
			if p != appendmem.None {
				target = fmt.Sprintf("m%d", p)
			}
			attr := ""
			if allParents && i == 0 {
				attr = " [penwidth=2]"
			}
			fmt.Fprintf(&b, "  m%d -> %s%s;\n", msg.ID, target, attr)
		}
	}
	b.WriteString("}\n")
	return b.String()
}

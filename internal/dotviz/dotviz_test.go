package dotviz

import (
	"strings"
	"testing"

	"repro/internal/appendmem"
	"repro/internal/topology"
)

func buildView(t *testing.T) appendmem.View {
	t.Helper()
	m := appendmem.New(3)
	g := m.Writer(0).MustAppend(+1, 0, nil)
	a := m.Writer(1).MustAppend(+1, 0, []appendmem.MsgID{g.ID})
	b := m.Writer(2).MustAppend(-1, 0, []appendmem.MsgID{g.ID})
	m.Writer(0).MustAppend(+1, 0, []appendmem.MsgID{a.ID, b.ID})
	return m.Read()
}

func TestChainRendering(t *testing.T) {
	view := buildView(t)
	out := Chain(view, Options{K: 3})
	for _, want := range []string{"digraph", "genesis", "m0", "m3", "m0 -> genesis", "style=bold"} {
		if !strings.Contains(out, want) {
			t.Errorf("chain dot missing %q", want)
		}
	}
	// Chain rendering uses only the first parent: m3 has one outgoing edge.
	if strings.Count(out, "m3 -> ") != 1 {
		t.Errorf("chain rendering emitted multiple parents:\n%s", out)
	}
}

func TestDagRendering(t *testing.T) {
	view := buildView(t)
	out := Dag(view, Options{K: 4})
	// DAG rendering shows both parents of m3, the selected one emphasized.
	if strings.Count(out, "m3 -> ") != 2 {
		t.Errorf("dag rendering lost parents:\n%s", out)
	}
	if !strings.Contains(out, "penwidth=2") {
		t.Error("selected-parent edge not emphasized")
	}
}

func TestByzantineColouring(t *testing.T) {
	view := buildView(t)
	out := Dag(view, Options{
		IsByzantine: func(id appendmem.NodeID) bool { return id == 2 },
	})
	if !strings.Contains(out, "color=red") {
		t.Error("no red byzantine block")
	}
	// Only node 2's single block is red.
	if strings.Count(out, "color=red") != 1 {
		t.Errorf("wrong number of red blocks:\n%s", out)
	}
}

func TestNoPrefixWithoutK(t *testing.T) {
	out := Chain(buildView(t), Options{})
	if strings.Contains(out, "style=bold") {
		t.Error("prefix bolded despite K=0")
	}
}

func TestEmptyView(t *testing.T) {
	m := appendmem.New(1)
	out := Dag(m.Read(), Options{K: 5})
	if !strings.Contains(out, "digraph") || !strings.Contains(out, "genesis") {
		t.Error("empty view rendering broken")
	}
}

func TestDeterministic(t *testing.T) {
	view := buildView(t)
	if Dag(view, Options{K: 2}) != Dag(view, Options{K: 2}) {
		t.Error("rendering not deterministic")
	}
}

func TestTopologyDot(t *testing.T) {
	g := topology.Ring(4, 1, 0.5)
	out := Topology(g, "ring")
	if !strings.HasPrefix(out, "graph topology {") || !strings.Contains(out, `label="ring"`) {
		t.Fatalf("header missing:\n%s", out)
	}
	for _, want := range []string{"n0;", "n3;", `n0 -- n1 [label="0.5"]`, `n0 -- n3 [label="0.5"]`} {
		if !strings.Contains(out, want) {
			t.Fatalf("missing %q in:\n%s", want, out)
		}
	}
	// Each undirected link renders exactly once.
	if got := strings.Count(out, " -- "); got != g.NumEdges() {
		t.Fatalf("rendered %d edges, want %d", got, g.NumEdges())
	}
}

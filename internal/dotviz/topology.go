package dotviz

import (
	"fmt"
	"strings"

	"repro/internal/topology"
)

// Topology renders a network graph as undirected DOT: one circle per
// node, one edge per link labeled with its latency. The name becomes the
// graph label so generated families are identifiable in the output.
func Topology(g *topology.Graph, name string) string {
	var b strings.Builder
	b.WriteString("graph topology {\n  layout=circo;\n")
	if name != "" {
		fmt.Fprintf(&b, "  label=%q;\n", name)
	}
	b.WriteString("  node [shape=circle, fontsize=9];\n")
	for i := 0; i < g.N(); i++ {
		fmt.Fprintf(&b, "  n%d;\n", i)
	}
	g.Edges(func(u, v int, lat float64) bool {
		fmt.Fprintf(&b, "  n%d -- n%d [label=\"%.3g\"];\n", u, v, lat)
		return true
	})
	b.WriteString("}\n")
	return b.String()
}

// Package repro_test holds the repository-level benchmark harness: one
// benchmark per experiment (E1–E24, see DESIGN.md's index), each of which
// regenerates its experiment's tables — the same rows `amexp -e <id>`
// prints — plus the single-line JSON record the same Result serializes
// to, and reports the experiment's key figure as a custom metric.
// Run with -v to see the tables inline:
//
//	go test -bench=. -benchmem
//	go test -bench=BenchmarkE10 -v
//
// Micro-benchmarks of the substrates (append memory, chain/DAG indexing,
// full protocol runs) follow the experiment benchmarks.
package repro_test

import (
	"strings"
	"testing"

	"repro/internal/adversary"
	"repro/internal/agreement"
	"repro/internal/agreement/chainba"
	"repro/internal/agreement/dagba"
	"repro/internal/agreement/syncba"
	"repro/internal/agreement/timestamp"
	"repro/internal/appendmem"
	"repro/internal/chain"
	"repro/internal/dag"
	"repro/internal/distrib"
	"repro/internal/experiments"
	"repro/internal/msgnet"
	"repro/internal/report"
	"repro/internal/runner"
	"repro/internal/scenario"
	"repro/internal/sim"
	"repro/internal/topology"
	"repro/internal/xrand"
)

// runExperiment drives one experiment per iteration and logs its tables
// plus the structured JSON record the same Result serializes to.
func runExperiment(b *testing.B, id string, trials int) []*experiments.Table {
	b.Helper()
	e, ok := experiments.ByID(id)
	if !ok {
		b.Fatalf("unknown experiment %s", id)
	}
	var r *experiments.Result
	for i := 0; i < b.N; i++ {
		r = experiments.Run(e, experiments.Options{Quick: true, Trials: trials, Seed: 1})
	}
	for _, t := range r.Tables {
		b.Log("\n" + report.TableText(t))
	}
	if line, err := report.JSONLine(r); err == nil {
		b.Log(line)
	} else {
		b.Fatalf("result does not serialize: %v", err)
	}
	return r.Tables
}

// cellValue reads a numeric cell, failing the benchmark otherwise.
func cellValue(b *testing.B, c experiments.Cell) float64 {
	b.Helper()
	v, ok := c.Value()
	if !ok {
		b.Fatalf("cell %+v not numeric", c)
	}
	return v
}

// lastRate reads the last row's numeric cell at col.
func lastRate(b *testing.B, t *experiments.Table, col int) float64 {
	b.Helper()
	return cellValue(b, t.Rows[len(t.Rows)-1][col])
}

func BenchmarkE1_AsyncImpossibility(b *testing.B) {
	tables := runExperiment(b, "E1", 0)
	violations := 0
	for _, row := range tables[0].Rows {
		if last := row[len(row)-1]; last.Kind == experiments.KindBool && !last.Bool {
			violations++
		}
	}
	b.ReportMetric(float64(violations)/float64(len(tables[0].Rows)), "theorem-holds-frac")
}

func BenchmarkE2_RoundLowerBound(b *testing.B) {
	tables := runExperiment(b, "E2", 10)
	// Key figure: agreement failure rate in the last truncated-round row
	// (rounds = t) of the last case.
	tbl := tables[0]
	var truncFail float64
	for _, row := range tbl.Rows {
		if strings.HasPrefix(row[4].Str, "failures") {
			truncFail = cellValue(b, row[3])
		}
	}
	b.ReportMetric(truncFail, "agr-fail-at-t-rounds")
}

func BenchmarkE3_SyncBA(b *testing.B) {
	tables := runExperiment(b, "E3", 8)
	b.ReportMetric(lastRate(b, tables[0], 2), "ok-rate-at-max-t")
}

func BenchmarkE4_Timestamps(b *testing.B) {
	tables := runExperiment(b, "E4", 20)
	b.ReportMetric(lastRate(b, tables[0], 1), "val-fail-at-max-k-tight")
}

func BenchmarkE5_ChainDetTieBreak(b *testing.B) {
	tables := runExperiment(b, "E5", 10)
	b.ReportMetric(lastRate(b, tables[0], 2), "validity-at-t-over-n-0.56")
}

func BenchmarkE6_ChainRandTieBreak(b *testing.B) {
	tables := runExperiment(b, "E6", 10)
	b.ReportMetric(lastRate(b, tables[0], 4), "validity-at-max-rate")
}

func BenchmarkE7_PrivateChainLength(b *testing.B) {
	tables := runExperiment(b, "E7", 15)
	b.ReportMetric(lastRate(b, tables[0], 2), "max-burst-at-max-n")
}

func BenchmarkE8_DagBA(b *testing.B) {
	tables := runExperiment(b, "E8", 10)
	b.ReportMetric(lastRate(b, tables[0], len(tables[0].Cols)-1), "dag-validity-hostile-corner")
}

func BenchmarkE9_MsgPassingSim(b *testing.B) {
	tables := runExperiment(b, "E9", 0)
	b.ReportMetric(lastRate(b, tables[0], 1), "append-msgs-at-max-n")
}

func BenchmarkE10_ChainVsDag(b *testing.B) {
	tables := runExperiment(b, "E10", 10)
	chainV := lastRate(b, tables[0], 3)
	dagV := lastRate(b, tables[0], 4)
	b.ReportMetric(dagV-chainV, "dag-minus-chain-validity")
}

func BenchmarkE11_TemporalAsynchrony(b *testing.B) {
	tables := runExperiment(b, "E11", 10)
	b.ReportMetric(lastRate(b, tables[0], 1), "dag-validity-max-blackout")
}

func BenchmarkE12_StalenessAblation(b *testing.B) {
	tables := runExperiment(b, "E12", 10)
	stale := lastRate(b, tables[0], 2)
	fresh := lastRate(b, tables[0], 3)
	b.ReportMetric(fresh-stale, "fresh-minus-stale-validity")
}

func BenchmarkE13_StickyBits(b *testing.B) {
	tables := runExperiment(b, "E13", 0)
	ok := 0
	for _, row := range tables[0].Rows {
		if last := row[len(row)-1]; row[0].Str == "sticky bit" && last.Kind == experiments.KindBool && last.Bool {
			ok++
		}
	}
	b.ReportMetric(float64(ok), "sticky-configs-solving-consensus")
}

func BenchmarkE14_Backbone(b *testing.B) {
	tables := runExperiment(b, "E14", 10)
	// Quality gap between the last dag row and the last chain-attack row.
	var chainQ, dagQ float64
	for _, row := range tables[0].Rows {
		q, ok := row[2].Value()
		if !ok {
			continue
		}
		if strings.HasPrefix(row[0].Str, "chain, tiebreak") {
			chainQ = q
		}
		if strings.HasPrefix(row[0].Str, "dag") {
			dagQ = q
		}
	}
	b.ReportMetric(dagQ-chainQ, "dag-minus-chain-quality")
}

func BenchmarkE15_MemoryVsMessages(b *testing.B) {
	tables := runExperiment(b, "E15", 8)
	// Ratio of message-passing relays to append-memory ops on the largest size.
	last := tables[0].Rows[len(tables[0].Rows)-1]
	amOps, _ := last[2].Value()
	mpMsgs, _ := last[3].Value()
	if amOps > 0 {
		b.ReportMetric(mpMsgs/amOps, "relays-per-memory-op")
	}
}

func BenchmarkE16_AsyncNodes(b *testing.B) {
	tables := runExperiment(b, "E16", 10)
	sync := cellValue(b, tables[0].Rows[0][1])
	async := lastRate(b, tables[0], 1)
	b.ReportMetric(sync-async, "chain-validity-lost-to-asynchrony")
}

func BenchmarkE17_AccessDiscipline(b *testing.B) {
	tables := runExperiment(b, "E17", 10)
	last := tables[0].Rows[len(tables[0].Rows)-1]
	poisson := cellValue(b, last[3])
	rr := cellValue(b, last[4])
	b.ReportMetric(rr-poisson, "dag-validity-gain-without-bursts")
}

func BenchmarkE18_DecisionLatency(b *testing.B) {
	tables := runExperiment(b, "E18", 8)
	last := tables[0].Rows[len(tables[0].Rows)-1]
	ideal := cellValue(b, last[1])
	ts := cellValue(b, last[2])
	if ideal > 0 {
		b.ReportMetric(ts/ideal, "timestamp-latency-vs-ideal")
	}
}

func BenchmarkE19_ConfirmationDepth(b *testing.B) {
	tables := runExperiment(b, "E19", 10)
	first := cellValue(b, tables[0].Rows[0][2])
	last := cellValue(b, tables[0].Rows[len(tables[0].Rows)-1][2])
	b.ReportMetric(last-first, "dag-validity-change-with-depth")
}

func BenchmarkE20_HashingPower(b *testing.B) {
	tables := runExperiment(b, "E20", 10)
	// Spread between configurations' dag validity should be small.
	lo, hi := 2.0, -1.0
	for _, row := range tables[0].Rows {
		v := cellValue(b, row[4])
		if v < lo {
			lo = v
		}
		if v > hi {
			hi = v
		}
	}
	b.ReportMetric(hi-lo, "dag-validity-spread-across-shapes")
}

func BenchmarkE21_GhostAdvantage(b *testing.B) {
	tables := runExperiment(b, "E21", 10)
	last := tables[0].Rows[len(tables[0].Rows)-1]
	ghost := cellValue(b, last[1])
	longest := cellValue(b, last[2])
	b.ReportMetric(ghost-longest, "ghost-minus-longest-validity")
}

func BenchmarkE22_TopologySeparation(b *testing.B) {
	tables := runExperiment(b, "E22", 8)
	last := tables[0].Rows[len(tables[0].Rows)-1]
	chain := cellValue(b, last[1])
	dag := cellValue(b, last[2])
	b.ReportMetric(dag-chain, "dag-minus-chain-validity-sparsest")
}

func BenchmarkE23_BoundedMemory(b *testing.B) {
	tables := runExperiment(b, "E23", 8)
	b.ReportMetric(cellValue(b, tables[0].Rows[0][3]), "horizon-over-live-hw")
}

func BenchmarkE24_AdversarySearch(b *testing.B) {
	tables := runExperiment(b, "E24", 8)
	// Margin of the searched chain adversary over the strongest preset
	// (≥ 0 by the E24 checks; 0 when the search lands exactly on one).
	rows := tables[0].Rows
	best := 0.0
	for _, row := range rows[:len(rows)-1] {
		if v := cellValue(b, row[2]); v > best {
			best = v
		}
	}
	b.ReportMetric(cellValue(b, rows[len(rows)-1][2])-best, "searched-minus-best-preset")
}

// --- substrate micro-benchmarks ---

func BenchmarkAppendMemoryAppend(b *testing.B) {
	// Restart the memory every 64k appends: experiments run many
	// bounded histories, not one unbounded one, and without the bound
	// the benchmark mostly times the GC marking a multi-hundred-MB
	// live heap whenever b.N grows past a few million.
	m := appendmem.New(8)
	w := m.Writer(0)
	parent := appendmem.None
	parents := []appendmem.MsgID{parent}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if i&(1<<16-1) == 0 && i > 0 {
			m = appendmem.New(8)
			w = m.Writer(0)
			parent = appendmem.None
		}
		parents[0] = parent
		msg := w.MustAppend(1, 0, parents)
		parent = msg.ID
	}
}

func BenchmarkChainBuild1000(b *testing.B) {
	m := appendmem.New(8)
	rng := xrand.New(1, 1)
	var ids []appendmem.MsgID
	for i := 0; i < 1000; i++ {
		parent := appendmem.None
		if len(ids) > 0 {
			parent = ids[rng.Intn(len(ids))]
		}
		msg := m.Writer(appendmem.NodeID(rng.Intn(8))).MustAppend(1, 0, []appendmem.MsgID{parent})
		ids = append(ids, msg.ID)
	}
	view := m.Read()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		tree := chain.Build(view)
		_ = tree.LongestTips()
	}
}

func BenchmarkDagBuildAndLinearize1000(b *testing.B) {
	m := appendmem.New(8)
	rng := xrand.New(2, 2)
	var ids []appendmem.MsgID
	for i := 0; i < 1000; i++ {
		var parents []appendmem.MsgID
		if len(ids) > 0 {
			for j := 0; j < 1+rng.Intn(2); j++ {
				parents = append(parents, ids[rng.Intn(len(ids))])
			}
		}
		msg := m.Writer(appendmem.NodeID(rng.Intn(8))).MustAppend(1, 0, parents)
		ids = append(ids, msg.ID)
	}
	view := m.Read()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		d := dag.Build(view)
		_ = d.Linearize(d.GhostPivot())
	}
}

// The Dispatch pair times the scheduler itself, not the trials: each
// iteration fans 256 near-empty trial bodies out through the process-wide
// pool (chunk claiming, work stealing, seed-order merge) and back. ns/op
// and allocs/op here are the per-fan-out overhead an experiment pays on
// top of its real per-trial work.

func BenchmarkTrialsDispatch(b *testing.B) {
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		out := runner.Trials(256, 1, 0, func(seed uint64) uint64 { return seed })
		if len(out) != 256 {
			b.Fatal("bad fan-out")
		}
	}
}

func BenchmarkTrialsReduceDispatch(b *testing.B) {
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		sum := runner.TrialsReduce(256, 1, 0, uint64(0),
			func(seed uint64) uint64 { return seed },
			func(a, v uint64) uint64 { return a + v })
		if sum == 0 {
			b.Fatal("bad fold")
		}
	}
}

// BenchmarkDistributedDispatch times the distributed sweep machinery end
// to end at its smallest useful scale: per iteration, two in-process
// loopback workers are brought up (pipes, handshake), a 32-trial sync
// sweep is chunked into leases, framed over the wire, executed, merged in
// chunk order and the session torn down. The delta against
// TrialsReduceDispatch is what -distribute costs over the in-process
// pool.
func BenchmarkDistributedDispatch(b *testing.B) {
	spec := scenario.Spec{Protocol: scenario.Sync, N: 4, T: 1, Trials: 32, Seed: 1}
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		ws := []distrib.Transport{distrib.Loopback(), distrib.Loopback()}
		res, _, err := distrib.Run(spec, distrib.Config{Workers: ws, ChunkSize: 8})
		if err != nil || len(res.Points) != 1 {
			b.Fatalf("bad distributed run: %v", err)
		}
		for _, w := range ws {
			w.Close()
		}
	}
}

func BenchmarkProtocolRunTimestamp(b *testing.B) {
	for i := 0; i < b.N; i++ {
		agreement.MustRun(agreement.RandomizedConfig{
			N: 10, T: 3, Lambda: 0.5, K: 21, Seed: uint64(i),
		}, timestamp.Rule{}, &agreement.ValueFlip{Rule: timestamp.Rule{}})
	}
}

func BenchmarkProtocolRunChain(b *testing.B) {
	for i := 0; i < b.N; i++ {
		agreement.MustRun(agreement.RandomizedConfig{
			N: 10, T: 3, Lambda: 0.5, K: 21, Seed: uint64(i),
		}, chainba.Rule{TB: chain.RandomTieBreaker{}}, &adversary.ChainTieBreaker{})
	}
}

func BenchmarkProtocolRunDag(b *testing.B) {
	for i := 0; i < b.N; i++ {
		agreement.MustRun(agreement.RandomizedConfig{
			N: 10, T: 3, Lambda: 0.5, K: 21, Seed: uint64(i),
		}, dagba.Rule{Pivot: dagba.Ghost}, &adversary.DagChainExtender{Pivot: dagba.Ghost})
	}
}

func BenchmarkProtocolRunSync(b *testing.B) {
	for i := 0; i < b.N; i++ {
		syncba.MustRun(syncba.Config{N: 9, T: 4, Seed: uint64(i)}, &syncba.LoudFlip{})
	}
}

func BenchmarkTopologyWattsStrogatz(b *testing.B) {
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		g := topology.WattsStrogatz(xrand.New(uint64(i), 7), 64, 2, 0.2, 0.1)
		if g.N() != 64 {
			b.Fatal("bad graph")
		}
	}
}

func BenchmarkTopologyBarabasiAlbert(b *testing.B) {
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		g := topology.BarabasiAlbert(xrand.New(uint64(i), 7), 64, 2, 0.1)
		if g.N() != 64 {
			b.Fatal("bad graph")
		}
	}
}

// BenchmarkGossipFlood times one full broadcast flood over a 64-node k=2
// ring — sim setup, hop-by-hop relay with duplicate suppression, and the
// drain to quiescence — the per-append transport cost sparse topologies
// add on top of the oracle.
func BenchmarkGossipFlood(b *testing.B) {
	g := topology.Ring(64, 2, 0.1)
	dm := topology.DelayModel{Kind: topology.DelayUniform}
	body := []byte("payload")
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		s := sim.New()
		nw := msgnet.NewGossip(s, xrand.New(uint64(i), 1), g, dm)
		delivered := 0
		for id := 0; id < g.N(); id++ {
			nw.Register(appendmem.NodeID(id), func(msgnet.Envelope) { delivered++ })
		}
		nw.Broadcast(0, "append", body)
		s.Run()
		if delivered != g.N() {
			b.Fatalf("delivered %d of %d", delivered, g.N())
		}
	}
}

// The GossipFlood{1k,10k} family times the steady-state flood hot path
// at scale: the network is built once (key generation and graph
// construction excluded), then each iteration runs one full
// broadcast-and-drain cycle — hop scheduling, duplicate suppression,
// relay fan-out, delivery — over large sparse graphs. ns/op here is the
// per-append transport cost of the 10k+-node regimes; allocs/op pins the
// pooled-everything discipline (payload buffers included).
type gossipFloodBench struct {
	g  *topology.Graph
	s  *sim.Sim
	nw *msgnet.Network
}

var gossipFloodNets = map[string]*gossipFloodBench{}

func benchGossipFlood(b *testing.B, name string, mk func() *topology.Graph) {
	fb := gossipFloodNets[name]
	if fb == nil {
		g := mk()
		s := sim.New()
		nw := msgnet.NewGossip(s, xrand.New(1, 1), g, topology.DelayModel{Kind: topology.DelayUniform})
		for id := 0; id < g.N(); id++ {
			nw.Register(appendmem.NodeID(id), func(msgnet.Envelope) {})
		}
		fb = &gossipFloodBench{g: g, s: s, nw: nw}
		gossipFloodNets[name] = fb
	}
	body := []byte("payload")
	fb.nw.Broadcast(0, "append", body) // warm pools before measuring
	fb.s.Run()
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		fb.nw.Broadcast(0, "append", body)
		fb.s.Run()
	}
}

func BenchmarkGossipFlood1k_Ring(b *testing.B) {
	benchGossipFlood(b, b.Name(), func() *topology.Graph { return topology.Ring(1000, 3, 0.1) })
}

func BenchmarkGossipFlood1k_SmallWorld(b *testing.B) {
	benchGossipFlood(b, b.Name(), func() *topology.Graph {
		return topology.WattsStrogatz(xrand.New(42, 7), 1000, 3, 0.2, 0.1)
	})
}

func BenchmarkGossipFlood1k_ScaleFree(b *testing.B) {
	benchGossipFlood(b, b.Name(), func() *topology.Graph {
		return topology.BarabasiAlbert(xrand.New(42, 7), 1000, 3, 0.1)
	})
}

func BenchmarkGossipFlood10k_Ring(b *testing.B) {
	benchGossipFlood(b, b.Name(), func() *topology.Graph { return topology.Ring(10000, 3, 0.1) })
}

func BenchmarkGossipFlood10k_SmallWorld(b *testing.B) {
	benchGossipFlood(b, b.Name(), func() *topology.Graph {
		return topology.WattsStrogatz(xrand.New(42, 7), 10000, 3, 0.2, 0.1)
	})
}

func BenchmarkGossipFlood10k_ScaleFree(b *testing.B) {
	benchGossipFlood(b, b.Name(), func() *topology.Graph {
		return topology.BarabasiAlbert(xrand.New(42, 7), 10000, 3, 0.1)
	})
}

// BenchmarkWindowedMemory1M drives a million-step horizon through a
// bounded memory with a trailing 4096-id retirement window — the
// acceptance bar for the bounded-memory layer. The reported metric is the
// horizon length over the peak live-message count (≥10× required; in
// practice >100×); B/op shows the slab pool recycling retired chunks
// instead of growing the heap with the horizon.
func BenchmarkWindowedMemory1M(b *testing.B) {
	const steps, window, stride = 1 << 20, 4096, 1024
	b.ReportAllocs()
	var ratio float64
	for i := 0; i < b.N; i++ {
		m := appendmem.NewBounded(8, window/8)
		parent := appendmem.None
		parents := []appendmem.MsgID{parent}
		for j := 0; j < steps; j++ {
			parents[0] = parent
			parent = m.Writer(appendmem.NodeID(j&7)).MustAppend(1, 0, parents).ID
			if (j+1)%stride == 0 {
				if floor := m.Len() - window; floor > 0 {
					m.Retire(floor)
				}
			}
		}
		ratio = float64(steps) / float64(m.LiveHighWater())
	}
	b.ReportMetric(ratio, "horizon-over-live-hw")
}

// confirmSweepSpec is the shared spec of the checkpoint wall-clock pair:
// a confirmation-depth sweep whose per-point cost is dominated by the
// shared pre-decision prefix (k=81), the axis checkpointing converts from
// re-simulated to restored.
func confirmSweepSpec(checkpoint bool) scenario.Spec {
	return scenario.Spec{
		Protocol: scenario.Dag, N: 10, T: 3, Crashes: 1,
		Lambda: 1, K: 81, Attack: scenario.AttackFlip,
		Seed: 1, Trials: 6, Checkpoint: checkpoint,
		Metrics: []string{"ok", "decide-time"},
		Sweep: []scenario.Axis{{Name: "confirm", Values: []scenario.Value{
			{Num: 0}, {Num: 2}, {Num: 4}, {Num: 6}, {Num: 8}}}},
	}
}

func benchConfirmSweep(b *testing.B, checkpoint bool) {
	spec := confirmSweepSpec(checkpoint)
	for i := 0; i < b.N; i++ {
		res := scenario.MustRunSpec(spec, scenario.Options{})
		if len(res.Points) != 5 {
			b.Fatal("bad sweep")
		}
	}
}

// The pair's ns/op difference is the wall clock checkpoint prefix reuse
// saves on a confirm-axis sweep (the metrics themselves are identical —
// experiment E23b pins that).
func BenchmarkConfirmSweepScratch(b *testing.B)      { benchConfirmSweep(b, false) }
func BenchmarkConfirmSweepCheckpointed(b *testing.B) { benchConfirmSweep(b, true) }

// stepHistory builds a protocol-shaped history of the given size: honest
// blocks extend the current structure while a minority keeps forking, the
// block mix the agreement runs produce.
func stepHistory(size int, multiParent bool) *appendmem.Memory {
	m := appendmem.New(8)
	rng := xrand.New(9, 9)
	var ids []appendmem.MsgID
	for i := 0; i < size; i++ {
		var parents []appendmem.MsgID
		if len(ids) > 0 {
			if multiParent {
				for j := 0; j < 1+rng.Intn(2); j++ {
					parents = append(parents, ids[rng.Intn(len(ids))])
				}
			} else {
				parents = append(parents, ids[rng.Intn(len(ids))])
			}
		}
		msg := m.Writer(appendmem.NodeID(rng.Intn(8))).MustAppend(1, 0, parents)
		ids = append(ids, msg.ID)
	}
	return m
}

// The Step pairs measure the per-step cost of a consumer re-reading a
// growing memory (view sizes cycling 2000..2200): a from-scratch Build per
// read versus one Cached handle that extends. The Extend variants pay one
// rebuild per 200 steps when the cycle wraps (the fallback path) and
// amortized O(1) per new block otherwise.

func BenchmarkChainStepBuild2000(b *testing.B) {
	m := stepHistory(2200, false)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		tree := chain.Build(m.ViewAt(2000 + i%201))
		_ = tree.LongestTips()
	}
}

func BenchmarkChainStepExtend2000(b *testing.B) {
	m := stepHistory(2200, false)
	c := chain.NewCached()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		tree := c.At(m.ViewAt(2000 + i%201))
		_ = tree.LongestTips()
	}
}

func BenchmarkDagStepBuild2000(b *testing.B) {
	m := stepHistory(2200, true)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		d := dag.Build(m.ViewAt(2000 + i%201))
		_ = d.GhostPivot()
	}
}

func BenchmarkDagStepExtend2000(b *testing.B) {
	m := stepHistory(2200, true)
	c := dag.NewCached()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		d := c.At(m.ViewAt(2000 + i%201))
		_ = d.GhostPivot()
	}
}
